"""Tests for the characterisation tools: distributions, stability, activity analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization.activity_analysis import (
    analyze_activity,
    dominant_period,
    weekend_ratio,
)
from repro.characterization.distributions import (
    compare_tail_fits,
    empirical_ccdf,
    fit_exponential,
    fit_lognormal,
)
from repro.characterization.stability import (
    correlation,
    parameter_stability,
    preference_stability,
)
from repro.errors import ShapeError, ValidationError


class TestDistributions:
    def test_ccdf_monotone_decreasing(self):
        values, ccdf = empirical_ccdf(np.random.default_rng(0).random(50))
        assert np.all(np.diff(values) >= 0)
        assert np.all(np.diff(ccdf) <= 0)
        assert ccdf[0] == pytest.approx(1.0)

    def test_ccdf_rejects_empty(self):
        with pytest.raises(ValidationError):
            empirical_ccdf([])

    def test_exponential_mle_recovers_scale(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(0.05, 5000)
        fit = fit_exponential(data)
        assert fit.parameters["scale"] == pytest.approx(0.05, rel=0.1)

    def test_lognormal_mle_recovers_parameters(self):
        rng = np.random.default_rng(2)
        data = rng.lognormal(-4.3, 1.7, 5000)
        fit = fit_lognormal(data)
        assert fit.parameters["mu"] == pytest.approx(-4.3, abs=0.1)
        assert fit.parameters["sigma"] == pytest.approx(1.7, rel=0.1)

    def test_lognormal_wins_on_lognormal_data(self):
        rng = np.random.default_rng(3)
        data = rng.lognormal(-4.3, 1.7, 300)
        fits = compare_tail_fits(data)
        assert fits["lognormal"].log_likelihood > fits["exponential"].log_likelihood

    def test_exponential_wins_on_exponential_data(self):
        rng = np.random.default_rng(4)
        data = rng.exponential(1.0, 300)
        fits = compare_tail_fits(data)
        assert fits["exponential"].log_likelihood > fits["lognormal"].log_likelihood - 5.0

    def test_fit_ccdf_evaluation(self):
        fit = fit_exponential(np.random.default_rng(5).exponential(1.0, 100))
        ccdf = fit.ccdf(np.array([0.0, 1.0, 10.0]))
        assert ccdf[0] == pytest.approx(1.0)
        assert np.all(np.diff(ccdf) < 0)

    def test_fit_requires_positive_values(self):
        with pytest.raises(ValidationError):
            fit_lognormal([0.0, 0.0])


class TestStability:
    def test_parameter_stability_of_constant_series(self):
        report = parameter_stability([0.25, 0.25, 0.25])
        assert report.coefficient_of_variation == pytest.approx(0.0)
        assert report.max_relative_change == pytest.approx(0.0)

    def test_parameter_stability_detects_drift(self):
        stable = parameter_stability([0.25, 0.26, 0.24])
        unstable = parameter_stability([0.1, 0.5, 0.2])
        assert unstable.coefficient_of_variation > stable.coefficient_of_variation

    def test_parameter_stability_needs_two_weeks(self):
        with pytest.raises(ValidationError):
            parameter_stability([0.25])

    def test_preference_stability_identical_weeks(self):
        preference = np.array([[0.5, 0.3, 0.2], [0.5, 0.3, 0.2]])
        report = preference_stability(preference)
        assert report.week_to_week_correlation == pytest.approx(1.0)
        assert report.max_relative_change == pytest.approx(0.0)

    def test_preference_stability_shape_check(self):
        with pytest.raises(ShapeError):
            preference_stability(np.ones(5))

    def test_correlation_basics(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert correlation(x, 2 * x) == pytest.approx(1.0)
        assert correlation(x, -x) == pytest.approx(-1.0)
        assert correlation(x, np.ones(4)) == 0.0

    def test_correlation_validation(self):
        with pytest.raises(ValidationError):
            correlation([1.0], [1.0])
        with pytest.raises(ShapeError):
            correlation([1.0, 2.0], [1.0, 2.0, 3.0])


class TestActivityAnalysis:
    def test_dominant_period_of_sine(self):
        bin_seconds = 300.0
        times = np.arange(0, 4 * 86400, bin_seconds)
        series = 10 + np.sin(2 * np.pi * times / 86400.0)
        assert dominant_period(series, bin_seconds=bin_seconds) == pytest.approx(86400.0, rel=0.05)

    def test_dominant_period_validation(self):
        with pytest.raises(ShapeError):
            dominant_period([1.0, 2.0])
        with pytest.raises(ValidationError):
            dominant_period(np.ones(100), bin_seconds=0.0)

    def test_weekend_ratio_detects_dip(self):
        bin_seconds = 3600.0
        times = np.arange(0, 7 * 86400, bin_seconds)
        day_of_week = np.floor((times % (7 * 86400)) / 86400)
        series = np.where(day_of_week >= 5, 5.0, 10.0)
        assert weekend_ratio(series, bin_seconds=bin_seconds) == pytest.approx(0.5)

    def test_weekend_ratio_without_weekend_is_one(self):
        series = np.ones(10)
        assert weekend_ratio(series, bin_seconds=3600.0) == 1.0

    def test_analyze_activity_node_selection(self):
        rng = np.random.default_rng(6)
        small = rng.random(100) + 1
        medium = rng.random(100) + 10
        large = rng.random(100) + 100
        activity = np.stack([medium, large, small], axis=1)
        summary = analyze_activity(activity, bin_seconds=300.0)
        assert summary.largest == 1
        assert summary.smallest == 2
        assert summary.median_node == 0

    def test_analyze_activity_shape_check(self):
        with pytest.raises(ShapeError):
            analyze_activity(np.ones((2, 3)))

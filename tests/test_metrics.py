"""Tests for the error metrics (paper Eq. 6 and companions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import (
    mean_relative_error,
    percent_improvement,
    rel_l2_spatial_error,
    rel_l2_temporal_error,
    summarize_improvement,
)
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ShapeError


class TestTemporalError:
    def test_zero_for_exact_estimate(self):
        actual = np.random.default_rng(0).random((4, 3, 3))
        np.testing.assert_allclose(rel_l2_temporal_error(actual, actual), 0.0)

    def test_matches_manual_computation(self):
        actual = np.ones((1, 2, 2))
        estimate = np.zeros((1, 2, 2))
        error = rel_l2_temporal_error(actual, estimate)
        assert error[0] == pytest.approx(1.0)

    def test_scale_invariance(self):
        rng = np.random.default_rng(1)
        actual = rng.random((5, 4, 4))
        estimate = rng.random((5, 4, 4))
        base = rel_l2_temporal_error(actual, estimate)
        scaled = rel_l2_temporal_error(actual * 10.0, estimate * 10.0)
        np.testing.assert_allclose(base, scaled)

    def test_accepts_series_objects(self):
        values = np.random.default_rng(2).random((3, 2, 2))
        series = TrafficMatrixSeries(values)
        np.testing.assert_allclose(
            rel_l2_temporal_error(series, series), np.zeros(3)
        )

    def test_zero_traffic_bin(self):
        actual = np.zeros((1, 2, 2))
        estimate = np.zeros((1, 2, 2))
        assert rel_l2_temporal_error(actual, estimate)[0] == 0.0
        estimate[0, 0, 0] = 1.0
        assert np.isinf(rel_l2_temporal_error(actual, estimate)[0])

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            rel_l2_temporal_error(np.ones((2, 2, 2)), np.ones((3, 2, 2)))


class TestSpatialError:
    def test_shape(self):
        actual = np.random.default_rng(3).random((6, 4, 4))
        error = rel_l2_spatial_error(actual, actual * 0.9)
        assert error.shape == (4, 4)

    def test_exact_is_zero(self):
        actual = np.random.default_rng(4).random((6, 3, 3))
        np.testing.assert_allclose(rel_l2_spatial_error(actual, actual), 0.0)


class TestImprovement:
    def test_sign_convention(self):
        baseline = np.array([1.0, 1.0])
        model = np.array([0.8, 1.2])
        improvement = percent_improvement(baseline, model)
        assert improvement[0] == pytest.approx(20.0)
        assert improvement[1] == pytest.approx(-20.0)

    def test_zero_baseline(self):
        improvement = percent_improvement(np.zeros(2), np.ones(2))
        np.testing.assert_allclose(improvement, 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            percent_improvement(np.ones(3), np.ones(4))

    def test_summary_keys(self):
        summary = summarize_improvement(np.array([1.0, 2.0, 3.0]))
        assert set(summary) == {"mean", "median", "p25", "p75", "min", "max"}
        assert summary["mean"] == pytest.approx(2.0)

    def test_summary_handles_empty(self):
        summary = summarize_improvement(np.array([np.inf, np.nan]))
        assert summary["mean"] == 0.0


class TestMeanRelativeError:
    def test_consistency_with_temporal(self):
        rng = np.random.default_rng(5)
        actual = rng.random((7, 3, 3))
        estimate = rng.random((7, 3, 3))
        assert mean_relative_error(actual, estimate) == pytest.approx(
            float(np.mean(rel_l2_temporal_error(actual, estimate)))
        )

"""Tests for the gravity-model baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gravity import GravityModel, gravity_matrix, gravity_series
from repro.core.traffic_matrix import TrafficMatrix, TrafficMatrixSeries
from repro.errors import ShapeError, ValidationError


class TestGravityMatrix:
    def test_formula(self):
        matrix = gravity_matrix([6.0, 4.0], [5.0, 5.0])
        np.testing.assert_allclose(matrix, np.array([[3.0, 3.0], [2.0, 2.0]]))

    def test_reproduces_rank_one_traffic_exactly(self):
        ingress = np.array([10.0, 20.0, 30.0])
        egress_share = np.array([0.5, 0.3, 0.2])
        truth = np.outer(ingress, egress_share)
        estimate = gravity_matrix(truth.sum(axis=1), truth.sum(axis=0))
        np.testing.assert_allclose(estimate, truth)

    def test_preserves_marginals(self):
        rng = np.random.default_rng(0)
        ingress = rng.random(5) * 100
        egress = ingress * rng.permutation(np.ones(5))  # same total
        estimate = gravity_matrix(ingress, egress)
        np.testing.assert_allclose(estimate.sum(axis=1), ingress)
        np.testing.assert_allclose(estimate.sum(axis=0), egress)

    def test_zero_traffic(self):
        np.testing.assert_allclose(gravity_matrix([0.0, 0.0], [0.0, 0.0]), 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            gravity_matrix([-1.0, 2.0], [1.0, 0.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ShapeError):
            gravity_matrix([1.0, 2.0], [1.0, 2.0, 3.0])


class TestGravitySeries:
    def test_errors_zero_when_traffic_is_gravity_structured(self):
        rng = np.random.default_rng(1)
        ingress = rng.random((4, 3)) * 10
        egress_share = rng.random(3)
        egress_share /= egress_share.sum()
        values = np.einsum("ti,j->tij", ingress, egress_share)
        series = TrafficMatrixSeries(values)
        estimate = gravity_series(series)
        np.testing.assert_allclose(estimate.values, values, rtol=1e-9)

    def test_accepts_raw_arrays(self):
        values = np.random.default_rng(2).random((3, 4, 4))
        estimate = gravity_series(values)
        assert estimate.n_timesteps == 3

    def test_preserves_metadata(self):
        values = np.random.default_rng(3).random((3, 2, 2))
        series = TrafficMatrixSeries(values, ["x", "y"], bin_seconds=900.0)
        estimate = gravity_series(series)
        assert estimate.nodes == ("x", "y")
        assert estimate.bin_seconds == 900.0


class TestGravityModel:
    def test_series_from_marginals(self):
        model = GravityModel(["a", "b"])
        series = model.series(np.ones((5, 2)), np.ones((5, 2)))
        assert series.n_timesteps == 5
        assert series.nodes == ("a", "b")

    def test_series_shape_mismatch(self):
        model = GravityModel()
        with pytest.raises(ShapeError):
            model.series(np.ones((5, 2)), np.ones((4, 2)))

    def test_degrees_of_freedom(self):
        assert GravityModel().degrees_of_freedom(22, 2016) == 2 * 22 * 2016 - 1

    def test_matrix_from_traffic(self):
        matrix = TrafficMatrix([[1.0, 2.0], [3.0, 4.0]])
        estimate = GravityModel.matrix_from_traffic(matrix)
        np.testing.assert_allclose(estimate.sum(), matrix.total)

    def test_fit_series_equivalent_to_gravity_series(self):
        values = np.random.default_rng(4).random((3, 3, 3))
        series = TrafficMatrixSeries(values)
        np.testing.assert_allclose(
            GravityModel().fit_series(series).values, gravity_series(series).values
        )

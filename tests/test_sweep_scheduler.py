"""Tests for the shared-plan sweep scheduler, spill plane and plan shipping.

Covers the PR-5 surface:

* eager noise-state checkpoints (plan reads are O(chunk), proven by counting
  replayed bins),
* the budget-bounded chunk replay cache behind multi-pass fits,
* routing/measurement/baseline reuse across the cells of a sweep,
* streamed ``jobs`` sweeps bit-identical to the serial in-memory sweep,
* shipping streaming-plan state to workers (value and shared-memory paths),
* out-of-core ``.npz`` spilling with lazy :class:`SpilledSeries` handles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.scenarios import (
    Scenario,
    ScenarioRunner,
    SpilledSeries,
    SpillStore,
    SweepSharedState,
)
from repro.streaming import CachedChunkStream, FunctionChunkStream, cache_chunks
from repro.synthesis.datasets import open_dataset_stream, streaming_dataset_from_state
from repro.synthesis.generator import _STATE_CACHE_STRIDE, ICTMGenerator, SyntheticTMConfig


SMALL = {"bins_per_week": 36, "max_bins": 4}


def _plan(n_bins=600, *, nodes=6, seed=3):
    generator = ICTMGenerator(
        [f"n{i}" for i in range(nodes)], SyntheticTMConfig(noise_sigma=0.2), seed=seed
    )
    return generator, generator.plan(n_bins)


class TestNoiseCheckpoints:
    def test_checkpoint_populates_every_stride_anchor(self):
        _, plan = _plan(600)
        assert set(plan.noise_states) == {0}
        plan.checkpoint_noise_states()
        expected = {0} | {s for s in range(0, 601, _STATE_CACHE_STRIDE)}
        assert set(plan.noise_states) == expected

    def test_checkpointed_first_read_replays_at_most_one_stride(self, monkeypatch):
        from repro.synthesis import generator as generator_module

        replayed: list[int] = []
        original = generator_module.GenerationPlan._replay_span

        def counting(self, rng, start, stop):
            replayed.append(stop - start)
            return original(self, rng, start, stop)

        monkeypatch.setattr(generator_module.GenerationPlan, "_replay_span", counting)

        generator, cold = _plan(600)
        list(generator.iter_chunks(cold, chunk_bins=32, start_bin=500, stop_bin=532))
        cold_replayed = sum(replayed)
        assert cold_replayed >= 500  # the whole prefix was replayed

        replayed.clear()
        generator, warm = _plan(600)
        warm.checkpoint_noise_states()
        checkpoint_replayed = sum(replayed)
        # One pass from bin 0 to the last stride anchor before n_bins.
        assert checkpoint_replayed == (600 // _STATE_CACHE_STRIDE) * _STATE_CACHE_STRIDE

        replayed.clear()
        list(generator.iter_chunks(warm, chunk_bins=32, start_bin=500, stop_bin=532))
        assert sum(replayed) < _STATE_CACHE_STRIDE  # O(chunk), not O(prefix)

    def test_repeat_reads_at_same_start_are_replay_free(self, monkeypatch):
        from repro.synthesis import generator as generator_module

        replayed: list[int] = []
        original = generator_module.GenerationPlan._replay_span

        def counting(self, rng, start, stop):
            replayed.append(stop - start)
            return original(self, rng, start, stop)

        monkeypatch.setattr(generator_module.GenerationPlan, "_replay_span", counting)
        generator, plan = _plan(600)
        list(generator.iter_chunks(plan, chunk_bins=32, start_bin=300, stop_bin=332))
        assert sum(replayed) > 0
        replayed.clear()
        list(generator.iter_chunks(plan, chunk_bins=32, start_bin=300, stop_bin=332))
        assert sum(replayed) == 0  # exact-start state was cached on the first read

    def test_checkpointed_chunks_bit_identical_to_cold_plan(self):
        generator, cold = _plan(600)
        generator2, warm = _plan(600)
        warm.checkpoint_noise_states()
        for (t0, a), (t1, b) in zip(
            generator.iter_chunks(cold, chunk_bins=41, start_bin=123, stop_bin=420),
            generator2.iter_chunks(warm, chunk_bins=41, start_bin=123, stop_bin=420),
        ):
            assert t0 == t1
            np.testing.assert_array_equal(a, b)

    def test_noise_free_plan_checkpoint_is_noop(self):
        generator = ICTMGenerator(["a", "b"], SyntheticTMConfig(noise_sigma=0.0), seed=1)
        plan = generator.plan(600)
        plan.checkpoint_noise_states()
        assert plan.noise_states == {0: plan.noise_states[0]}


class TestCachedChunkStream:
    def _counting_stream(self, n_bins=64, chunk_bins=16):
        passes = {"count": 0}
        rng_values = np.random.default_rng(0).random((n_bins, 3, 3))

        def factory(resolved):
            passes["count"] += 1
            for start in range(0, n_bins, resolved):
                yield start, rng_values[start : start + resolved].copy()

        stream = FunctionChunkStream(
            factory, n_bins=n_bins, nodes=("a", "b", "c"), bin_seconds=300.0,
            chunk_bins=chunk_bins,
        )
        return stream, passes, rng_values

    def test_cached_passes_are_bit_identical_and_skip_regen(self):
        stream, passes, values = self._counting_stream()
        cached = cache_chunks(stream, budget_bytes=10 * values.nbytes)
        first = np.concatenate([b for _, b in cached.chunks()])
        second = np.concatenate([b for _, b in cached.chunks()])
        np.testing.assert_array_equal(first, values)
        np.testing.assert_array_equal(second, values)
        assert passes["count"] == 1  # second pass came from the cache
        assert cached.cached_bins == 64

    def test_budget_bounds_cached_bins(self):
        stream, passes, values = self._counting_stream(n_bins=64, chunk_bins=16)
        chunk_bytes = values[:16].nbytes
        cached = CachedChunkStream(stream, budget_bytes=2 * chunk_bytes)
        for _ in range(3):
            total = np.concatenate([b for _, b in cached.chunks()])
            np.testing.assert_array_equal(total, values)
        assert cached.cached_bins == 32  # two chunks fit the budget
        assert passes["count"] == 3  # the tail regenerates every pass

    def test_zero_or_none_budget_disables_caching(self):
        stream, passes, _ = self._counting_stream()
        assert cache_chunks(stream, budget_bytes=None) is stream
        assert cache_chunks(stream, budget_bytes=0) is stream

    def test_array_streams_are_not_wrapped(self):
        from repro.streaming import ArrayChunkStream

        stream = ArrayChunkStream(np.zeros((8, 2, 2)))
        assert cache_chunks(stream, budget_bytes=1 << 20) is stream

    def test_fit_with_cache_matches_uncached_fit(self):
        from repro.core.streaming import fit_stable_fp_streaming

        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=48, chunk_bins=12)
        week = data.week_stream(0)
        plain = fit_stable_fp_streaming(week)
        cached = fit_stable_fp_streaming(week, cache_bytes=64 << 20)
        assert plain.forward_fraction == cached.forward_fraction
        np.testing.assert_array_equal(plain.preference, cached.preference)
        np.testing.assert_array_equal(plain.errors, cached.errors)


class TestOperatorReuse:
    def test_routing_built_once_per_topology_across_cells_and_priors(self, monkeypatch):
        from repro.topology import routing as routing_module

        routing_module.clear_routing_cache()
        builds: list[str] = []
        original = routing_module._build_routing_matrix

        def counting(topology, *, ecmp=True):
            builds.append(topology.name)
            return original(topology, ecmp=ecmp)

        monkeypatch.setattr(routing_module, "_build_routing_matrix", counting)
        ScenarioRunner().sweep(
            priors=("stable_f", "gravity"), datasets=("geant", "totem"),
            base=dict(SMALL), jobs=1,
        )
        # 2 priors x 2 datasets = 4 cells, but only one build per topology.
        assert sorted(builds) == ["geant", "totem"]
        routing_module.clear_routing_cache()

    def test_augmented_operator_cached_on_routing_instance(self):
        from repro.synthesis.datasets import load_dataset
        from repro.estimation.linear_system import simulate_link_loads

        data = load_dataset("geant", n_weeks=1, bins_per_week=36)
        week = data.week(0)[:4]
        system_a = simulate_link_loads(data.topology, week)
        system_b = simulate_link_loads(data.topology, week, seed=7, noise_std=0.1)
        b_first, _ = system_a.augmented_system()
        b_second, _ = system_b.augmented_system()
        assert b_first is b_second  # same memoised routing, same stacked operator
        assert not b_first.flags.writeable

    def test_shared_state_reuses_systems_and_baselines(self):
        shared = SweepSharedState()
        runner = ScenarioRunner()
        base = Scenario(dataset="geant", prior="gravity", target_week=1,
                        stream=True, n_weeks=2, **SMALL)
        for prior in ("gravity", "stable_f", "stable_fp"):
            runner.run(base.replace(prior=prior), shared=shared)
        # One measurement system and one baseline estimate for the column —
        # the gravity cell's own estimate doubles as the baseline.
        assert shared.system_builds == 1
        assert shared.baseline_builds == 1

    def test_shared_cells_match_unshared_cells_bitwise(self):
        shared = SweepSharedState()
        runner = ScenarioRunner()
        base = Scenario(dataset="geant", prior="gravity", target_week=1,
                        stream=True, n_weeks=2, **SMALL)
        for prior in ("gravity", "stable_f", "stable_fp"):
            with_sharing = runner.run(base.replace(prior=prior), shared=shared)
            without = runner.run(base.replace(prior=prior))
            np.testing.assert_array_equal(with_sharing.errors, without.errors)
            if with_sharing.baseline_errors is not None:
                np.testing.assert_array_equal(
                    with_sharing.baseline_errors, without.baseline_errors
                )


class TestSharedPlanSweeps:
    def test_streamed_jobs2_grid_matches_serial_in_memory_sweep(self):
        """The acceptance grid: 2x2 incl. totem anomalies, streamed+parallel.

        Every cell of a streamed ``jobs=2`` sweep must agree with the serial
        in-memory sweep within 1e-12 (closed-form priors are exactly equal;
        the streamed ALS fit of ``stable_fp`` differs only in reduction
        order).  Week 1 targets exercise resume-from-week-boundary chunk
        reads in the workers.
        """
        kwargs = dict(
            priors=("gravity", "stable_f"),
            datasets=("geant", "totem"),
            base=dict(bins_per_week=36, max_bins=6, target_week=1),
        )
        in_memory = ScenarioRunner().sweep(jobs=1, **kwargs)
        streamed = ScenarioRunner().sweep(jobs=2, stream=True, **kwargs)
        assert not in_memory.failures and not streamed.failures
        assert len(in_memory.results) == len(streamed.results) == 4
        for mem_cell, stream_cell in zip(in_memory.results, streamed.results):
            assert mem_cell.scenario.dataset == stream_cell.scenario.dataset
            assert mem_cell.scenario.prior == stream_cell.scenario.prior
            np.testing.assert_allclose(
                np.asarray(stream_cell.errors), np.asarray(mem_cell.errors),
                rtol=0, atol=1e-12,
            )
            np.testing.assert_allclose(
                np.asarray(stream_cell.prior_errors), np.asarray(mem_cell.prior_errors),
                rtol=0, atol=1e-12,
            )

    def test_forced_pool_matches_serial(self, monkeypatch):
        """End-to-end worker-pool run on any host (cpu count patched up)."""
        import repro.scenarios.runner as runner_module

        monkeypatch.setattr(runner_module.os, "cpu_count", lambda: 4)
        kwargs = dict(
            priors=("stable_f", "gravity"),
            datasets=("geant",),
            base=dict(SMALL, stream=True),
        )
        serial = ScenarioRunner().sweep(jobs=1, **kwargs)
        pooled = ScenarioRunner().sweep(jobs=2, **kwargs)
        assert not pooled.failures
        for left, right in zip(serial.results, pooled.results):
            np.testing.assert_array_equal(
                np.asarray(left.errors), np.asarray(right.errors)
            )

    def test_sweep_reports_throughput_and_rss(self):
        result = ScenarioRunner().sweep(
            priors=("stable_f",), datasets=("geant",), base=dict(SMALL), jobs=1
        )
        assert result.timing["cells"] == 1
        assert result.timing["cells_per_second"] > 0
        assert "cells/s" in result.format_summary()

    def test_column_batches_group_then_split(self):
        cells = [
            Scenario(dataset=dataset, prior=prior, n_weeks=2, **SMALL)
            for dataset in ("geant", "totem")
            for prior in ("gravity", "stable_f")
        ]
        items = [(index, cell, None) for index, cell in enumerate(cells)]
        by_column = ScenarioRunner._column_batches(items, 2)
        assert [[item[0] for item in batch] for batch in by_column] == [[0, 1], [2, 3]]
        split = ScenarioRunner._column_batches(items, 4)
        assert len(split) == 4
        assert sorted(item[0] for batch in split for item in batch) == [0, 1, 2, 3]


class TestStreamingPlanShipping:
    def test_export_state_rebuild_is_bit_identical(self):
        data = open_dataset_stream("totem", n_weeks=2, bins_per_week=32).checkpoint_noise()
        rebuilt = streaming_dataset_from_state(data.export_state())
        for week in range(2):
            np.testing.assert_array_equal(
                rebuilt.week(week).values, data.week(week).values
            )
        assert rebuilt.nodes == data.nodes
        assert rebuilt.bins_per_week == data.bins_per_week

    def test_export_state_strip_arrays_roundtrip(self):
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=32)
        state = data.export_state()
        stripped = state.strip_arrays()
        assert stripped.activity is None
        arrays = {name: getattr(state, name) for name in type(state).ARRAY_FIELDS}
        rebuilt = streaming_dataset_from_state(stripped, arrays)
        np.testing.assert_array_equal(rebuilt.week(0).values, data.week(0).values)
        with pytest.raises(ValidationError, match="missing plan arrays"):
            streaming_dataset_from_state(stripped, {})

    def test_shm_roundtrip_of_plan_payload(self):
        from repro.scenarios.runner import (
            _WORKER_DATASETS,
            _export_datasets_shm,
            _init_sweep_worker,
            _release_shm_blocks,
        )

        data = open_dataset_stream("geant", n_weeks=2, bins_per_week=32).checkpoint_noise()
        key = ("stream", "geant", 2, 32, False, None, None)
        payload, blocks = _export_datasets_shm({key: data})
        assert payload is not None and blocks
        try:
            kind, state, arrays_meta = payload[key]
            assert kind == "plan"
            assert state.activity is None  # arrays travel out-of-band
            assert set(arrays_meta) == set(type(state).ARRAY_FIELDS)
            _init_sweep_worker({}, payload)
            rebuilt = _WORKER_DATASETS[key]
            np.testing.assert_array_equal(
                rebuilt.week(1).values, data.week(1).values
            )
        finally:
            _init_sweep_worker({})
            _release_shm_blocks(blocks, unlink=True)

    def test_run_accepts_shipped_streaming_dataset(self):
        scenario = Scenario(
            dataset="geant", prior="stable_f", stream=True, n_weeks=2, target_week=1, **SMALL
        )
        shipped = open_dataset_stream("geant", n_weeks=2, bins_per_week=36).checkpoint_noise()
        rebuilt = streaming_dataset_from_state(shipped.export_state())
        from_cache = ScenarioRunner().run(scenario)
        from_shipped = ScenarioRunner().run(scenario, dataset=rebuilt)
        np.testing.assert_array_equal(from_cache.errors, from_shipped.errors)

    def test_run_rejects_mismatched_dataset_kinds(self):
        from repro.synthesis.datasets import load_dataset

        streaming = Scenario(dataset="geant", prior="stable_f", stream=True, **SMALL)
        cube = load_dataset("geant", n_weeks=1, bins_per_week=36)
        with pytest.raises(ValidationError, match="pass dataset=None"):
            ScenarioRunner().run(streaming, dataset=cube)
        in_memory = streaming.replace(stream=False)
        stream_data = open_dataset_stream("geant", n_weeks=1, bins_per_week=36)
        with pytest.raises(ValidationError, match="materialised"):
            ScenarioRunner().run(in_memory, dataset=stream_data)

    def test_run_rejects_too_short_streaming_dataset(self):
        scenario = Scenario(
            dataset="geant", prior="stable_f", stream=True, calibration_week=1,
            target_week=2, **SMALL,
        )
        shipped = open_dataset_stream("geant", n_weeks=1, bins_per_week=36)
        with pytest.raises(ValidationError, match="weeks"):
            ScenarioRunner().run(scenario, dataset=shipped)


class TestSpill:
    def test_store_roundtrip_and_lazy_handle(self, tmp_path):
        store = SpillStore(tmp_path / "run", shard_bins=8)
        values = np.arange(20.0)
        series = store.add_series("errors", values)
        assert isinstance(series, SpilledSeries)
        assert series.shape == (20,)
        assert len(series.paths) == 3  # 8 + 8 + 4
        np.testing.assert_array_equal(np.asarray(series), values)
        assert float(np.mean(series)) == values.mean()

    def test_writer_accepts_chunks_in_order_only(self, tmp_path):
        store = SpillStore(tmp_path, shard_bins=4)
        writer = store.writer("estimate")
        writer(0, np.zeros((3, 2, 2)))
        writer(3, np.ones((3, 2, 2)))
        series = writer.finish()
        assert series.shape == (6, 2, 2)
        np.testing.assert_array_equal(series[3:], np.ones((3, 2, 2)))
        bad = store.writer("other")
        bad(0, np.zeros((2, 2, 2)))
        with pytest.raises(ValidationError, match="expected a chunk"):
            bad(5, np.zeros((1, 2, 2)))

    def test_handle_pickles_as_paths(self, tmp_path):
        import pickle

        store = SpillStore(tmp_path)
        series = store.add_series("x", np.arange(6.0))
        series.load()
        clone = pickle.loads(pickle.dumps(series))
        assert clone._loaded is None  # the cache does not travel
        np.testing.assert_array_equal(np.asarray(clone), np.arange(6.0))

    def test_streamed_scenario_spills_with_explicit_dir(self, tmp_path):
        scenario = Scenario(
            dataset="geant", prior="stable_f", stream=True,
            spill_dir=str(tmp_path), **SMALL,
        )
        plain = ScenarioRunner().run(scenario.replace(spill_dir=None))
        spilled = ScenarioRunner().run(scenario)
        assert isinstance(spilled.errors, SpilledSeries)
        assert isinstance(spilled.improvement, SpilledSeries)
        assert "estimate" in spilled.spilled
        estimate = spilled.spilled["estimate"]
        assert estimate.shape == (4, 22, 22)
        np.testing.assert_array_equal(np.asarray(spilled.errors), plain.errors)
        assert spilled.timing["spill_dir"].startswith(str(tmp_path))
        assert "spill directory" in spilled.format_table()
        # The shards really live under the run directory, one cell subdir.
        shards = list(tmp_path.rglob("*.npz"))
        assert shards and all("geant-stable_f" in str(path) for path in shards)

    def test_auto_spill_threshold(self, monkeypatch, tmp_path):
        import repro.scenarios.runner as runner_module

        monkeypatch.setattr(runner_module, "SPILL_AUTO_MIN_BINS", 4)
        monkeypatch.setattr(
            runner_module.tempfile, "mkdtemp",
            lambda prefix: str(tmp_path / "auto-run"),
        )
        scenario = Scenario(dataset="geant", prior="stable_f", stream=True, **SMALL)
        result = ScenarioRunner().run(scenario)
        assert isinstance(result.errors, SpilledSeries)
        assert result.timing["spill_dir"] == str(tmp_path / "auto-run")

    def test_spill_dir_requires_stream(self):
        scenario = Scenario(dataset="geant", prior="stable_f", spill_dir="/tmp/x", **SMALL)
        with pytest.raises(ValidationError, match="stream"):
            scenario.validate()

    def test_sweep_cells_spill_into_label_subdirs(self, tmp_path):
        result = ScenarioRunner().sweep(
            priors=("stable_f", "gravity"), datasets=("geant",),
            base=dict(SMALL, stream=True, spill_dir=str(tmp_path)), jobs=1,
        )
        assert not result.failures
        subdirs = sorted(path.name for path in tmp_path.iterdir())
        assert subdirs == ["geant-gravity", "geant-stable_f"]
        for cell in result.results:
            np.testing.assert_array_equal(
                np.asarray(cell.errors), np.asarray(cell.errors)
            )

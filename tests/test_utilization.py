"""Tests for link-utilization analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError
from repro.topology.library import abilene_topology
from repro.topology.routing import build_routing_matrix
from repro.topology.topology import Topology
from repro.topology.utilization import compute_link_utilization


def make_line_topology() -> Topology:
    topology = Topology("line", ["a", "b", "c"])
    topology.add_bidirectional_link("a", "b", capacity=1e9)
    topology.add_bidirectional_link("b", "c", capacity=1e9)
    return topology


class TestComputeLinkUtilization:
    def test_single_flow_loads_expected_links(self):
        topology = make_line_topology()
        values = np.zeros((1, 3, 3))
        values[0, 0, 2] = 1e6  # a -> c: must cross a->b and b->c
        series = TrafficMatrixSeries(values, topology.nodes, bin_seconds=100.0)
        report = compute_link_utilization(topology, series)
        expected_bps = 1e6 * 8.0 / 100.0
        loads = {f"{l.source}->{l.target}": report.loads_bps[0, r] for r, l in enumerate(report.routing.links)}
        assert loads["a->b"] == pytest.approx(expected_bps)
        assert loads["b->c"] == pytest.approx(expected_bps)
        assert loads["b->a"] == 0.0

    def test_utilization_scale(self):
        topology = make_line_topology()
        values = np.zeros((1, 3, 3))
        values[0, 0, 1] = 1e9 / 8.0 * 100.0  # exactly fills the 1 Gbps a->b link
        series = TrafficMatrixSeries(values, topology.nodes, bin_seconds=100.0)
        report = compute_link_utilization(topology, series)
        assert report.peak_utilization == pytest.approx(1.0)
        assert report.overloaded_links(threshold=0.99) == ["a->b"]

    def test_busiest_links_sorted(self):
        topology = abilene_topology()
        rng = np.random.default_rng(0)
        values = rng.random((4, 11, 11)) * 1e8
        series = TrafficMatrixSeries(values, topology.nodes, bin_seconds=300.0)
        report = compute_link_utilization(topology, series)
        busiest = report.busiest_links(3)
        assert len(busiest) == 3
        assert busiest[0][1] >= busiest[1][1] >= busiest[2][1]

    def test_accepts_prebuilt_routing(self):
        topology = abilene_topology()
        routing = build_routing_matrix(topology)
        values = np.ones((2, 11, 11)) * 1e6
        series = TrafficMatrixSeries(values, topology.nodes)
        report = compute_link_utilization(topology, series, routing=routing)
        assert report.loads_bps.shape == (2, routing.n_links)

    def test_node_mismatch_rejected(self):
        topology = make_line_topology()
        series = TrafficMatrixSeries(np.ones((1, 3, 3)), ["x", "y", "z"])
        with pytest.raises(ValidationError):
            compute_link_utilization(topology, series)

    def test_foreign_routing_rejected(self):
        topology = make_line_topology()
        other_routing = build_routing_matrix(abilene_topology())
        series = TrafficMatrixSeries(np.ones((1, 3, 3)), topology.nodes)
        with pytest.raises(ValidationError):
            compute_link_utilization(topology, series, routing=other_routing)

    def test_per_link_maxima_shape(self):
        topology = abilene_topology()
        values = np.random.default_rng(1).random((3, 11, 11)) * 1e7
        series = TrafficMatrixSeries(values, topology.nodes)
        report = compute_link_utilization(topology, series)
        assert report.max_utilization_per_link().shape == (report.routing.n_links,)
        assert np.all(report.max_utilization_per_link() >= 0)

"""Tests for the unified telemetry plane (``repro.obs``).

Covers:

* :class:`~repro.obs.Tracer` span nesting, error attribution, capture-mode
  drain and cross-process context propagation,
* :class:`~repro.obs.MetricsRegistry` counters/gauges/bounded-reservoir
  histograms, Prometheus text exposition and the live
  :class:`~repro.obs.MetricsServer`,
* trace export: merge, per-name summary with wall coverage, Chrome
  ``trace_event`` conversion,
* the CLI opt-ins: ``--trace`` (and ``REPRO_TRACE``), ``--metrics-out``,
  ``repro trace summary|merge|export`` — and the determinism contract that
  a traced run prints bit-identical numbers to the untraced run,
* distributed tracing: pool workers and a two-daemon loopback remote sweep
  merging into one causally-linked trace with >= 95% wall coverage,
* executor failure telemetry: unreachable workers and mid-batch deaths
  close their spans with ``error=`` attributes and increment the failure
  counter,
* the serve satellites: ``feed_lag_seconds`` under a paced feed that
  outruns the fit loop, and flat-memory stage-latency reservoirs.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    NullMetricsRegistry,
    NullTracer,
    Tracer,
    get_metrics,
    get_tracer,
    tracer_from_context,
    use_metrics,
    use_tracer,
    worker_context,
)
from repro.obs.export import (
    chrome_trace,
    load_trace_file,
    merge_trace_files,
    summarize_trace,
    write_trace_file,
)

SMALL = ["--bins-per-week", "36", "--max-bins", "6"]


def _spans(events):
    return [e for e in events if e.get("kind") == "span"]


class TestTracer:
    def test_ambient_default_is_disabled_null_tracer(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled
        # The null span is always legal: context manager, set(), no-op.
        with tracer.span("anything", attr=1) as span:
            span.set(more=2)

    def test_nested_spans_record_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = _spans(tracer.drain())
        inner, outer = events  # inner closes (and is emitted) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None
        assert inner["trace"] == outer["trace"]

    def test_span_ids_are_unique(self):
        tracer = Tracer()
        for _ in range(10):
            with tracer.span("s"):
                pass
        ids = [e["span"] for e in _spans(tracer.drain())]
        assert len(set(ids)) == len(ids)

    def test_exception_closes_span_with_error_attr(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("kaboom")
        (span,) = _spans(tracer.drain())
        assert span["attrs"]["error"] == "RuntimeError: kaboom"
        assert span["duration_s"] >= 0

    def test_file_mode_writes_header_then_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path) as tracer:
            with tracer.span("work", size=3):
                pass
        events = load_trace_file(path)
        assert events[0]["kind"] == "trace_start"
        assert events[1]["kind"] == "span"
        assert events[1]["attrs"] == {"size": 3}

    def test_worker_adopts_shipped_context_as_parent(self):
        driver = Tracer(worker="driver")
        with driver.span("dispatch"):
            context = worker_context(driver)
            remote = tracer_from_context(context, worker="w1")
            with remote.span("cell"):
                pass
            driver.ingest(remote.drain())
        events = _spans(driver.drain())
        by_name = {e["name"]: e for e in events}
        assert by_name["cell"]["trace"] == driver.trace_id
        assert by_name["cell"]["parent"] == by_name["dispatch"]["span"]
        assert by_name["cell"]["worker"] == "w1"

    def test_null_context_yields_null_worker_tracer(self):
        assert worker_context(NullTracer()) is None
        assert isinstance(tracer_from_context(None, worker="w"), NullTracer)

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        before = get_tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is before


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc()
        registry.counter("events_total").inc(4)
        registry.gauge("depth").set(7)
        snapshot = registry.snapshot()
        assert snapshot["events_total"] == 5
        assert snapshot["depth"] == 7

    def test_counter_set_total_is_monotonic_sync(self):
        registry = MetricsRegistry()
        counter = registry.counter("published_total")
        counter.set_total(10)
        counter.set_total(24)
        assert registry.snapshot()["published_total"] == 24

    def test_histogram_reservoir_stays_bounded(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds")
        for value in range(10_000):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert histogram.sample_size <= 512
        assert snap["count"] == 10_000
        assert snap["min"] == 0.0 and snap["max"] == 9999.0
        assert 0.0 <= snap["p50"] <= snap["p95"] <= snap["p99"] <= 9999.0

    def test_histogram_quantiles_exact_on_small_samples(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("small")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.snapshot()["p50"] == 2.0

    def test_labels_key_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", stage="a").inc()
        registry.counter("hits", stage="b").inc(2)
        snapshot = registry.snapshot()
        assert snapshot['hits{stage="a"}'] == 1
        assert snapshot['hits{stage="b"}'] == 2

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="registered as counter"):
            registry.gauge("x")

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_cells_total", status="ok").inc(3)
        registry.gauge("repro_depth").set(1.5)
        registry.histogram("repro_latency", stage="fit").observe(0.25)
        text = registry.to_prometheus()
        assert "# TYPE repro_cells_total counter" in text
        assert 'repro_cells_total{status="ok"} 3' in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_latency summary" in text
        assert 'repro_latency{stage="fit",quantile="0.5"} 0.25' in text
        assert 'repro_latency_count{stage="fit"} 1' in text

    def test_null_registry_is_disabled_noop(self):
        registry = NullMetricsRegistry()
        assert not registry.enabled
        registry.counter("x").inc()
        registry.histogram("y").observe(1.0)
        assert registry.to_prometheus() == ""
        assert isinstance(get_metrics(), NullMetricsRegistry)

    def test_use_metrics_scopes_and_restores(self):
        registry = MetricsRegistry()
        before = get_metrics()
        with use_metrics(registry):
            assert get_metrics() is registry
        assert get_metrics() is before


class TestMetricsServer:
    def test_serves_prometheus_text_over_http(self):
        registry = MetricsRegistry()
        registry.gauge("repro_live_gauge").set(42)
        with MetricsServer(registry, port=0) as server:
            body = urllib.request.urlopen(
                f"http://{server.host}:{server.port}/metrics", timeout=5
            ).read().decode()
            assert "repro_live_gauge 42" in body
            # Scrapes see live updates, not a snapshot taken at bind time.
            registry.gauge("repro_live_gauge").set(43)
            body = urllib.request.urlopen(
                f"http://{server.host}:{server.port}/metrics", timeout=5
            ).read().decode()
            assert "repro_live_gauge 43" in body

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{server.host}:{server.port}/nope", timeout=5
                )


class TestExport:
    def _sample_events(self):
        tracer = Tracer(worker="driver")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        return tracer.drain()

    def test_merge_orders_by_start_time(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        with Tracer(first) as tracer:
            with tracer.span("early"):
                pass
        time.sleep(0.01)
        with Tracer(second) as tracer:
            with tracer.span("late"):
                pass
        merged = merge_trace_files([first, second])
        names = [e["name"] for e in _spans(merged)]
        assert names == ["early", "late"]
        out = tmp_path / "merged.jsonl"
        write_trace_file(merged, out)
        assert [e["name"] for e in _spans(load_trace_file(out))] == names

    def test_summary_counts_and_coverage(self):
        summary = summarize_trace(self._sample_events())
        assert summary.spans == 2
        assert summary.workers == ("driver",)
        assert summary.errors == 0
        # The outer span covers the whole extent, so coverage is total.
        assert summary.coverage == pytest.approx(1.0)
        table = summary.format_table()
        assert "outer" in table and "coverage" in table

    def test_summary_flags_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("nope")
        assert summarize_trace(tracer.drain()).errors == 1

    def test_chrome_export_structure(self):
        payload = chrome_trace(self._sample_events())
        complete = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        metadata = [e for e in payload["traceEvents"] if e.get("ph") == "M"]
        assert len(complete) == 2
        assert all(e["dur"] >= 0 and e["ts"] > 0 for e in complete)
        assert any(m["name"] == "process_name" for m in metadata)

    def test_load_rejects_bad_json_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "trace_start"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trace_file(path)


class TestCliObservability:
    def test_traced_estimate_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "estimate.jsonl"
        assert main(["estimate", "--prior", "gravity", "--dataset", "geant",
                     *SMALL, "--trace", str(trace)]) == 0
        events = load_trace_file(trace)
        names = {e["name"] for e in _spans(events)}
        assert {"repro", "synthesize", "build_prior", "estimate"} <= names
        # The root span makes the summary account for the whole command.
        assert summarize_trace(events).coverage >= 0.95
        capsys.readouterr()

    def test_traced_run_is_bit_identical_to_untraced(self, tmp_path, capsys):
        from repro.cli import main

        def numeric_lines(text):
            # Drop the wall-clock/RSS rows, which vary run to run; every
            # estimation figure must match to the printed digit.
            return [line for line in text.splitlines()
                    if "runtime (s)" not in line and "peak RSS" not in line]

        args = ["estimate", "--prior", "stable_f", "--dataset", "geant", *SMALL]
        assert main(args) == 0
        untraced = capsys.readouterr().out
        assert main([*args, "--trace", str(tmp_path / "t.jsonl")]) == 0
        traced = capsys.readouterr().out
        assert numeric_lines(traced) == numeric_lines(untraced)

    def test_trace_env_var_enables_tracing(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        trace = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        assert main(["estimate", "--prior", "gravity", "--dataset", "geant", *SMALL]) == 0
        assert _spans(load_trace_file(trace))
        capsys.readouterr()

    def test_metrics_out_writes_prometheus_text(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.prom"
        assert main(["estimate", "--prior", "gravity", "--dataset", "geant",
                     *SMALL, "--metrics-out", str(out)]) == 0
        text = out.read_text()
        assert 'repro_scenario_runs_total{mode="memory"} 1' in text
        assert "# TYPE repro_scenario_run_seconds summary" in text
        capsys.readouterr()

    def test_trace_subcommand_summary_merge_export(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        with Tracer(trace) as tracer:
            with tracer.span("work"):
                pass
        assert main(["trace", "summary", str(trace)]) == 0
        assert "work" in capsys.readouterr().out
        merged = tmp_path / "merged.jsonl"
        assert main(["trace", "merge", str(trace), "-o", str(merged)]) == 0
        capsys.readouterr()
        assert _spans(load_trace_file(merged))
        chrome = tmp_path / "chrome.json"
        assert main(["trace", "export", str(trace), "-o", str(chrome)]) == 0
        capsys.readouterr()
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_trace_subcommand_rejects_bad_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", "summary", str(bad)]) == 2
        assert "error" in capsys.readouterr().err


class TestDistributedTracing:
    def test_pool_workers_spans_merge_into_driver_trace(self):
        from repro.scenarios import LocalPoolExecutor, Scenario, ScenarioRunner

        cells = [
            Scenario(dataset="geant", prior=prior, bins_per_week=36, max_bins=4)
            for prior in ("gravity", "stable_f")
        ]
        tracer = Tracer(worker="driver")
        with use_tracer(tracer):
            swept = ScenarioRunner().run_cells(
                cells, jobs=2, executor=LocalPoolExecutor(2)
            )
        assert not swept.failures
        spans = _spans(tracer.drain())
        cell_spans = [s for s in spans if s["name"] == "sweep_cell"]
        assert len(cell_spans) == 2
        assert all(s["worker"].startswith("pool-") for s in cell_spans)
        assert len({s["trace"] for s in spans}) == 1

    def test_two_worker_loopback_sweep_yields_one_attributed_trace(self, tmp_path):
        # The PR's acceptance scenario: a 2-worker loopback distributed
        # sweep with --trace produces a single merged trace whose
        # sweep_cell spans are attributed to the correct worker and whose
        # summary accounts for >= 95% of wall time.
        from repro.scenarios import RemoteExecutor, Scenario, ScenarioRunner, SpawnedWorkers

        trace_path = tmp_path / "sweep.jsonl"
        base = Scenario(dataset="geant", prior="gravity", bins_per_week=36, max_bins=4)
        with Tracer(trace_path) as tracer, use_tracer(tracer):
            with tracer.span("repro", command="sweep"):
                with SpawnedWorkers(2) as workers:
                    swept = ScenarioRunner().sweep(
                        priors=("gravity", "stable_f", "measured"),
                        datasets=("geant",),
                        base=base,
                        jobs=2,
                        executor=RemoteExecutor(workers.addresses),
                    )
        assert not swept.failures and len(swept.results) == 3
        events = load_trace_file(trace_path)
        spans = _spans(events)
        assert len({s["trace"] for s in spans}) == 1
        cell_spans = [s for s in spans if s["name"] == "sweep_cell"]
        assert len(cell_spans) == 3
        worker_spans = {s["span"]: s for s in spans if s["name"] == "remote_worker"}
        assert {s["attrs"]["worker"] for s in worker_spans.values()} == set(
            workers.addresses
        )
        for cell in cell_spans:
            # Attribution: the cell ran on the worker whose remote_worker
            # span (opened by the driver thread driving that daemon) is its
            # causal parent.
            parent = worker_spans[cell["parent"]]
            assert cell["worker"] == parent["attrs"]["worker"]
        assert summarize_trace(events).coverage >= 0.95


class TestExecutorFailureTelemetry:
    def test_unreachable_worker_counts_failure_and_closes_span_with_error(self):
        from repro.errors import ExecutorError
        from repro.scenarios import RemoteExecutor, Scenario, ScenarioRunner

        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        registry = MetricsRegistry()
        tracer = Tracer(worker="driver")
        cells = [Scenario(dataset="geant", prior="gravity", bins_per_week=36, max_bins=4)]
        with use_metrics(registry), use_tracer(tracer):
            with pytest.raises(ExecutorError, match="unreachable"):
                ScenarioRunner().run_cells(
                    cells,
                    executor=RemoteExecutor([("127.0.0.1", port)], connect_timeout=2.0),
                )
        label = f"127.0.0.1:{port}"
        key = f'repro_executor_failures_total{{reason="unreachable",worker="{label}"}}'
        assert registry.snapshot()[key] == 1
        (span,) = [s for s in _spans(tracer.drain()) if s["name"] == "remote_worker"]
        assert "unreachable" in span["attrs"]["error"]

    def test_mid_batch_death_counts_connection_failure(self):
        from repro.errors import ExecutorError
        from repro.scenarios import RemoteExecutor, Scenario, ScenarioRunner
        from repro.scenarios.executors import (
            SWEEP_WORKER_PROTOCOL,
            _recv_message,
            _send_message,
        )

        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def dies_after_ping():
            conn, _ = server.accept()
            with conn:
                _recv_message(conn)  # the ping
                _send_message(conn, {"ok": True, "protocol": SWEEP_WORKER_PROTOCOL})
                # Die without reading the dataset/batch that follows.

        thread = threading.Thread(target=dies_after_ping, daemon=True)
        thread.start()
        registry = MetricsRegistry()
        tracer = Tracer(worker="driver")
        cells = [Scenario(dataset="geant", prior="gravity", bins_per_week=36, max_bins=4)]
        try:
            with use_metrics(registry), use_tracer(tracer):
                with pytest.raises(ExecutorError):
                    ScenarioRunner().run_cells(
                        cells,
                        executor=RemoteExecutor(
                            [("127.0.0.1", port)], connect_timeout=2.0
                        ),
                    )
        finally:
            thread.join(timeout=5)
            server.close()
        failures = {
            series: value
            for series, value in registry.snapshot().items()
            if series.startswith("repro_executor_failures_total")
        }
        assert sum(failures.values()) == 1
        (span,) = [s for s in _spans(tracer.drain()) if s["name"] == "remote_worker"]
        assert "error" in span["attrs"]

    def test_failed_cell_increments_failure_counter(self):
        from repro.scenarios import Scenario, ScenarioRunner

        registry = MetricsRegistry()
        cells = [
            Scenario(dataset="geant", prior="stable_f", bins_per_week=36, max_bins=4,
                     measured_forward_fraction=2.0)  # invalid f -> cell fails
        ]
        with use_metrics(registry):
            swept = ScenarioRunner().run_cells(cells)
        assert swept.failures
        assert registry.snapshot()["repro_sweep_cell_failures_total"] == 1


class TestServeTelemetry:
    def test_paced_feed_outrunning_fit_loop_records_feed_lag(self, tmp_path, abilene):
        # Satellite churn test: replay the bundled day at high speed-up with
        # an estimator slowed below the feed rate; the watermark runs ahead
        # of publication, so the lag gauges and the lag-distribution
        # histograms must record a non-zero backlog while the run drains
        # cleanly at the end.
        from repro.estimation.pipeline import TMEstimator
        from repro.ingest import FileReplaySource, IngestService

        class SlowEstimator:
            def __init__(self, delay):
                self._inner = TMEstimator()
                self._delay = delay

            def estimate_stream(self, *args, **kwargs):
                time.sleep(self._delay)
                return self._inner.estimate_stream(*args, **kwargs)

        registry = MetricsRegistry()
        service = IngestService(
            FileReplaySource(
                "examples/sample_flows.csv", abilene.nodes,
                speedup=7200.0, batch_records=256,
            ),
            abilene,
            estimator=SlowEstimator(0.15),
            bin_seconds=300.0,
            chunk_bins=2,
            sink=tmp_path / "estimates.jsonl",
            metrics=registry,
        )
        status = service.run()
        assert status.bins_published == 24
        lag_window = registry.histogram("repro_serve_feed_lag_seconds_window").snapshot()
        behind_window = registry.histogram(
            "repro_serve_bins_behind_watermark_window"
        ).snapshot()
        assert lag_window["count"] >= 2
        assert lag_window["max"] > 0.0, "paced feed never outran the fit loop"
        assert behind_window["max"] >= 1.0
        assert lag_window["max"] == behind_window["max"] * 300.0
        # Fully drained at the end: the *final* gauges read zero again.
        assert registry.snapshot()["repro_serve_feed_lag_seconds"] == 0.0
        assert status.feed_lag_seconds == 0.0

    def test_status_snapshot_and_metrics_agree(self, tmp_path, abilene):
        from repro.ingest import FileReplaySource, IngestService

        registry = MetricsRegistry()
        status_path = tmp_path / "status.json"
        service = IngestService(
            FileReplaySource("examples/sample_flows.csv", abilene.nodes),
            abilene,
            bin_seconds=300.0,
            chunk_bins=4,
            sink=tmp_path / "estimates.jsonl",
            status_path=status_path,
            metrics=registry,
        )
        service.run()
        snapshot = registry.snapshot()
        status = json.loads(status_path.read_text())
        assert snapshot["repro_serve_bins_published_total"] == status["bins_published"]
        assert snapshot["repro_serve_records_binned_total"] == status["records_binned"]
        latency = status["stage_latency_seconds"]
        for stage in ("bin", "measure", "prior", "estimate", "publish", "fit"):
            series = f'repro_serve_stage_latency_seconds{{stage="{stage}"}}'
            assert snapshot[series]["count"] == latency[stage]["samples"]
            assert snapshot[series]["p50"] == pytest.approx(
                latency[stage]["p50"], abs=1e-6
            )

    def test_stage_latency_memory_stays_flat(self, tmp_path, abilene):
        # Satellite 2: the per-stage latency store is a bounded reservoir,
        # not an ever-growing sample list — memory must not scale with the
        # number of chunks a long-lived service processes.
        import tracemalloc

        from repro.ingest import FileReplaySource, IngestService

        service = IngestService(
            FileReplaySource("examples/sample_flows.csv", abilene.nodes),
            abilene,
            bin_seconds=300.0,
            sink=tmp_path / "estimates.jsonl",
            metrics=MetricsRegistry(),
        )
        rng = np.random.default_rng(0)
        for value in rng.random(2_000):
            service._record_stage("estimate", float(value))
        tracemalloc.start()
        for value in rng.random(50_000):
            service._record_stage("estimate", float(value))
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        histogram = service.metrics.histogram(
            "repro_serve_stage_latency_seconds", stage="estimate"
        )
        assert histogram.sample_size <= 512
        assert histogram.snapshot()["count"] == 52_000
        # 25x more samples than the warm-up added no retained growth beyond
        # noise: the reservoir recycles its 512 slots in place.
        assert current < 64 * 1024, f"stage-latency store grew by {current} bytes"
        latency = service._stage_latency()
        assert latency["estimate"]["samples"] == 52_000
        assert 0.0 <= latency["estimate"]["p50"] <= latency["estimate"]["p99"] <= 1.0


class TestSweepMetrics:
    def test_sweep_records_cells_and_shared_state_metrics(self):
        from repro.scenarios import Scenario, ScenarioRunner

        registry = MetricsRegistry()
        base = Scenario(dataset="geant", prior="gravity", bins_per_week=36,
                        max_bins=4, stream=True, n_weeks=2, target_week=1)
        with use_metrics(registry):
            swept = ScenarioRunner().sweep(
                priors=("gravity", "stable_f"), datasets=("geant",), base=base, jobs=1
            )
        assert not swept.failures
        snapshot = registry.snapshot()
        assert snapshot['repro_sweep_cells_total{status="ok"}'] == 2
        assert snapshot["repro_sweep_cells_per_second"] > 0
        # Two streaming cells share one dataset column: the measurement
        # system is requested per cell but built once.
        assert snapshot['repro_sweep_shared_requests_total{kind="system"}'] == 2
        assert snapshot['repro_sweep_shared_builds_total{kind="system"}'] == 1

    def test_spill_writes_record_bytes(self, tmp_path):
        from repro.scenarios.spill import SpillStore

        registry = MetricsRegistry()
        with use_metrics(registry):
            store = SpillStore(tmp_path / "spill", shard_bins=4)
            writer = store.writer("estimate")
            writer(0, np.ones((8, 3, 3)))
            writer.finish()
        snapshot = registry.snapshot()
        assert snapshot["repro_spill_shards_total"] == 2
        assert snapshot["repro_spill_bytes_total"] > 0

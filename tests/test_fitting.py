"""Tests for IC-model parameter fitting (the Section 5.1 optimisation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitting import fit_stable_f, fit_stable_fp, fit_time_varying
from repro.core.ic_model import simplified_ic_series
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ValidationError


class TestStableFPFit:
    def test_exact_recovery_on_clean_data(self, clean_ic_series):
        series, forward, preference, activity = clean_ic_series
        fit = fit_stable_fp(series)
        assert fit.model == "stable-fP"
        assert fit.forward_fraction == pytest.approx(forward, abs=0.01)
        np.testing.assert_allclose(fit.preference, preference, atol=0.005)
        assert fit.mean_error < 1e-3

    def test_activity_recovery_on_clean_data(self, clean_ic_series):
        series, _, _, activity = clean_ic_series
        fit = fit_stable_fp(series)
        correlation = np.corrcoef(fit.activity.ravel(), activity.ravel())[0, 1]
        assert correlation > 0.999

    def test_objective_history_is_monotone_decreasing(self, clean_ic_series):
        series, *_ = clean_ic_series
        fit = fit_stable_fp(series)
        history = np.array(fit.objective_history)
        assert np.all(np.diff(history) <= 1e-6)

    def test_converged_flag(self, clean_ic_series):
        series, *_ = clean_ic_series
        assert fit_stable_fp(series, max_iterations=100).converged

    def test_noisy_data_still_beats_gravity(self):
        from repro.core.gravity import gravity_series
        from repro.core.metrics import mean_relative_error

        rng = np.random.default_rng(11)
        activity = rng.lognormal(np.log(1e6), 0.7, (40, 10))
        preference = rng.lognormal(-4.3, 1.7, 10)
        clean = simplified_ic_series(0.22, activity, preference / preference.sum())
        noisy = TrafficMatrixSeries(clean * rng.lognormal(0.0, 0.2, clean.shape))
        fit = fit_stable_fp(noisy)
        gravity_error = mean_relative_error(noisy, gravity_series(noisy))
        assert fit.mean_error < gravity_error

    def test_predicted_series_matches_errors(self, clean_ic_series):
        series, *_ = clean_ic_series
        fit = fit_stable_fp(series)
        predicted = fit.predicted_series(bin_seconds=series.bin_seconds)
        from repro.core.metrics import rel_l2_temporal_error

        np.testing.assert_allclose(
            rel_l2_temporal_error(series, predicted), fit.errors, atol=1e-12
        )

    def test_forward_bounds_respected(self, clean_ic_series):
        series, *_ = clean_ic_series
        fit = fit_stable_fp(series, forward_bounds=(0.0, 0.1))
        assert 0.0 <= fit.forward_fraction <= 0.1

    def test_invalid_bounds_rejected(self, clean_ic_series):
        series, *_ = clean_ic_series
        with pytest.raises(ValidationError):
            fit_stable_fp(series, forward_bounds=(0.6, 0.4))

    def test_invalid_initial_f_rejected(self, clean_ic_series):
        series, *_ = clean_ic_series
        with pytest.raises(ValidationError):
            fit_stable_fp(series, initial_forward_fraction=1.5)

    def test_refine_does_not_hurt(self, clean_ic_series):
        series, *_ = clean_ic_series
        plain = fit_stable_fp(series)
        refined = fit_stable_fp(series, refine=True)
        assert refined.objective <= plain.objective + 1e-6

    def test_preference_is_normalised(self, clean_ic_series):
        series, *_ = clean_ic_series
        fit = fit_stable_fp(series)
        assert fit.preference.sum() == pytest.approx(1.0)
        assert np.all(fit.preference >= 0)

    def test_activity_nonnegative(self, clean_ic_series):
        series, *_ = clean_ic_series
        assert np.all(fit_stable_fp(series).activity >= 0)

    def test_accepts_raw_array(self):
        rng = np.random.default_rng(3)
        values = rng.random((6, 4, 4))
        fit = fit_stable_fp(values)
        assert fit.errors.shape == (6,)

    def test_single_bin_series(self):
        rng = np.random.default_rng(4)
        values = rng.random((1, 5, 5))
        fit = fit_stable_fp(values)
        assert fit.activity.shape == (1, 5)


class TestStableFFit:
    def test_fits_clean_data_near_exactly(self, clean_ic_series):
        series, forward, *_ = clean_ic_series
        fit = fit_stable_f(series)
        assert fit.model == "stable-f"
        assert fit.mean_error < 0.01
        assert fit.preference.shape == (series.n_timesteps, series.n_nodes)

    def test_error_not_worse_than_stable_fp(self, clean_ic_series):
        """More degrees of freedom must not fit the data worse (up to tolerance)."""
        series, *_ = clean_ic_series
        fp = fit_stable_fp(series)
        f_only = fit_stable_f(series)
        assert f_only.mean_error <= fp.mean_error + 1e-3

    def test_forward_bounds(self, clean_ic_series):
        series, *_ = clean_ic_series
        fit = fit_stable_f(series, forward_bounds=(0.0, 0.3))
        assert fit.forward_fraction <= 0.3


class TestTimeVaryingFit:
    def test_fits_data_with_drifting_f(self):
        rng = np.random.default_rng(9)
        n, t = 6, 12
        preference = rng.random(n)
        preference /= preference.sum()
        activity = rng.lognormal(np.log(1e5), 0.4, (t, n))
        forwards = np.linspace(0.15, 0.35, t)
        values = np.stack(
            [simplified_ic_series(forwards[k], activity[k][None], preference)[0] for k in range(t)]
        )
        fit = fit_time_varying(values)
        assert fit.model == "time-varying"
        assert fit.forward_fraction.shape == (t,)
        assert fit.mean_error < 0.02

    def test_time_varying_not_worse_than_stable_f(self, clean_ic_series):
        series, *_ = clean_ic_series
        tv = fit_time_varying(series)
        sf = fit_stable_f(series)
        assert tv.mean_error <= sf.mean_error + 1e-3

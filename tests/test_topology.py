"""Tests for the topology substrate and the built-in topology library."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.library import (
    abilene_topology,
    geant_topology,
    random_topology,
    totem_topology,
)
from repro.topology.topology import Link, Topology


class TestLink:
    def test_valid_link(self):
        link = Link("a", "b", weight=2.0, capacity=1e9)
        assert link.key == ("a", "b")

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Link("a", "a")

    def test_rejects_non_positive_weight(self):
        with pytest.raises(TopologyError):
            Link("a", "b", weight=0.0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(TopologyError):
            Link("a", "b", capacity=-1.0)


class TestTopology:
    def make_triangle(self) -> Topology:
        topology = Topology("tri", ["a", "b", "c"])
        topology.add_bidirectional_link("a", "b")
        topology.add_bidirectional_link("b", "c")
        topology.add_bidirectional_link("c", "a")
        return topology

    def test_basic_counts(self):
        topology = self.make_triangle()
        assert topology.n_nodes == 3
        assert topology.n_links == 6

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(TopologyError):
            Topology("bad", ["a", "a"])

    def test_empty_topology_rejected(self):
        with pytest.raises(TopologyError):
            Topology("empty", [])

    def test_link_endpoint_must_exist(self):
        topology = Topology("t", ["a", "b"])
        with pytest.raises(TopologyError):
            topology.add_link(Link("a", "zz"))

    def test_duplicate_link_rejected(self):
        topology = Topology("t", ["a", "b"])
        topology.add_link(Link("a", "b"))
        with pytest.raises(TopologyError):
            topology.add_link(Link("a", "b"))

    def test_node_index_and_lookup(self):
        topology = self.make_triangle()
        assert topology.node_index("b") == 1
        with pytest.raises(TopologyError):
            topology.node_index("zz")

    def test_has_link_and_link(self):
        topology = self.make_triangle()
        assert topology.has_link("a", "b")
        assert topology.link("a", "b").source == "a"
        with pytest.raises(TopologyError):
            topology.link("a", "zz")

    def test_neighbors(self):
        topology = self.make_triangle()
        assert sorted(topology.neighbors("a")) == ["b", "c"]

    def test_connectivity_checks(self):
        connected = self.make_triangle()
        assert connected.is_strongly_connected()
        connected.validate_connected()
        disconnected = Topology("d", ["a", "b", "c"])
        disconnected.add_bidirectional_link("a", "b")
        assert not disconnected.is_strongly_connected()
        with pytest.raises(TopologyError):
            disconnected.validate_connected()

    def test_to_networkx(self):
        graph = self.make_triangle().to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 6
        assert graph["a"]["b"]["weight"] == 1.0


class TestLibrary:
    def test_geant_dimensions(self):
        topology = geant_topology()
        assert topology.n_nodes == 22
        assert topology.is_strongly_connected()

    def test_totem_dimensions(self):
        topology = totem_topology()
        assert topology.n_nodes == 23
        assert "de1" in topology.nodes and "de2" in topology.nodes
        assert "de" not in topology.nodes
        assert topology.is_strongly_connected()

    def test_abilene_dimensions(self):
        topology = abilene_topology()
        assert topology.n_nodes == 11
        assert topology.has_link("IPLS", "KSCY")
        assert topology.is_strongly_connected()

    def test_random_topology_connected_and_seeded(self):
        a = random_topology(15, seed=3)
        b = random_topology(15, seed=3)
        assert a.n_nodes == 15
        assert a.is_strongly_connected()
        assert {link.key for link in a.links} == {link.key for link in b.links}

    def test_random_topology_rejects_tiny(self):
        with pytest.raises(TopologyError):
            random_topology(1)

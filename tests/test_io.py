"""Tests for the interchange formats (CSV, Totem XML, topology JSON)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.traffic_matrix import TrafficMatrix, TrafficMatrixSeries
from repro.errors import ValidationError
from repro.io import (
    load_series_csv,
    matrix_from_totem_xml,
    matrix_to_totem_xml,
    save_series_csv,
    topology_from_json,
    topology_to_json,
)
from repro.topology.library import abilene_topology, geant_topology


@pytest.fixture()
def small_series():
    values = np.random.default_rng(0).random((4, 3, 3)) * 1e6
    return TrafficMatrixSeries(values, ["at", "be", "ch"], bin_seconds=900.0)


class TestCSV:
    def test_round_trip(self, tmp_path, small_series):
        path = tmp_path / "series.csv"
        save_series_csv(small_series, path)
        loaded = load_series_csv(path)
        np.testing.assert_allclose(loaded.values, small_series.values)
        assert loaded.nodes == small_series.nodes
        assert loaded.bin_seconds == small_series.bin_seconds

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValidationError):
            load_series_csv(path)

    def test_rejects_duplicate_entries(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text(
            "bin,origin,destination,bytes\n0,a,b,1.0\n0,a,b,2.0\n"
        )
        with pytest.raises(ValidationError):
            load_series_csv(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("bin,origin,destination,bytes\n")
        with pytest.raises(ValidationError):
            load_series_csv(path)

    def test_missing_entries_default_to_zero(self, tmp_path):
        path = tmp_path / "sparse.csv"
        path.write_text(
            "bin,origin,destination,bytes\n0,a,b,5.0\n1,b,a,7.0\n"
        )
        series = load_series_csv(path)
        assert series.n_timesteps == 2
        assert series.nodes == ("a", "b")
        assert series.values[0, 0, 1] == 5.0
        assert series.values[0, 1, 0] == 0.0


class TestTotemXML:
    def test_round_trip(self, tmp_path):
        matrix = TrafficMatrix(
            np.random.default_rng(1).random((4, 4)) * 1e7, ["at", "be", "ch", "de"]
        )
        path = tmp_path / "tm.xml"
        matrix_to_totem_xml(matrix, path)
        loaded = matrix_from_totem_xml(path)
        assert loaded.nodes == matrix.nodes
        np.testing.assert_allclose(loaded.values, matrix.values)

    def test_rejects_malformed_xml(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<TrafficMatrixFile><IntraTM>")
        with pytest.raises(ValidationError):
            matrix_from_totem_xml(path)

    def test_rejects_xml_without_intratm(self, tmp_path):
        path = tmp_path / "other.xml"
        path.write_text("<Something/>")
        with pytest.raises(ValidationError):
            matrix_from_totem_xml(path)

    def test_accepts_intratm_root(self, tmp_path):
        path = tmp_path / "root.xml"
        path.write_text(
            '<IntraTM><src id="a"><dst id="a">0.0</dst><dst id="b">3.5</dst></src>'
            '<src id="b"><dst id="a">1.5</dst><dst id="b">0.0</dst></src></IntraTM>'
        )
        matrix = matrix_from_totem_xml(path)
        assert matrix.flow("a", "b") == 3.5
        assert matrix.flow("b", "a") == 1.5


class TestTopologyJSON:
    def test_round_trip_geant(self, tmp_path):
        topology = geant_topology()
        path = tmp_path / "geant.json"
        topology_to_json(topology, path)
        loaded = topology_from_json(path)
        assert loaded.name == topology.name
        assert loaded.nodes == topology.nodes
        assert {link.key for link in loaded.links} == {link.key for link in topology.links}
        assert loaded.link("at", "hu").weight == topology.link("at", "hu").weight

    def test_round_trip_from_string(self):
        text = topology_to_json(abilene_topology())
        loaded = topology_from_json(text)
        assert loaded.n_nodes == 11

    def test_rejects_missing_fields(self):
        with pytest.raises(ValidationError):
            topology_from_json('{"name": "x", "nodes": ["a"]}')

    def test_rejects_invalid_json(self):
        with pytest.raises(ValidationError):
            topology_from_json("{not json")

    def test_rejects_link_without_endpoints(self):
        with pytest.raises(ValidationError):
            topology_from_json(
                '{"name": "x", "nodes": ["a", "b"], "links": [{"source": "a"}]}'
            )

"""Tests for the packet/flow trace substrate and the Section 5.2 f-measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError, ValidationError
from repro.traces.applications import (
    DEFAULT_APPLICATION_MIX,
    ApplicationProfile,
    aggregate_forward_fraction,
)
from repro.traces.connections import Connection
from repro.traces.flows import FiveTuple, FlowRecord
from repro.traces.matching import measure_forward_fraction
from repro.traces.netflow import NetflowSampler, od_flows_from_connections
from repro.traces.trace_generator import BidirectionalTraceGenerator


class TestApplications:
    def test_default_mix_shares_sum_to_one(self):
        total = sum(profile.connection_share for profile in DEFAULT_APPLICATION_MIX)
        assert total == pytest.approx(1.0)

    def test_web_is_strongly_asymmetric(self):
        web = next(p for p in DEFAULT_APPLICATION_MIX if p.name == "web")
        assert web.expected_forward_fraction < 0.1

    def test_p2p_is_roughly_symmetric(self):
        p2p = next(p for p in DEFAULT_APPLICATION_MIX if p.name == "p2p")
        assert 0.25 < p2p.expected_forward_fraction < 0.5

    def test_aggregate_f_in_paper_range(self):
        assert 0.15 < aggregate_forward_fraction() < 0.35

    def test_sample_volumes_shape(self):
        rng = np.random.default_rng(0)
        forward, reverse = DEFAULT_APPLICATION_MIX[0].sample_volumes(rng, size=10)
        assert forward.shape == (10,)
        assert np.all(forward > 0) and np.all(reverse > 0)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValidationError):
            ApplicationProfile("bad", 1.0, -1.0, 1.0, 1.0, 0.5)
        with pytest.raises(ValidationError):
            ApplicationProfile("bad", 1.0, 1.0, 1.0, 1.0, -0.5)

    def test_empty_mix_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_forward_fraction(())


class TestFiveTupleAndFlow:
    def test_reversal(self):
        five = FiveTuple("1.1.1.1", "2.2.2.2", 1234, 80)
        rev = five.reversed()
        assert rev.src_ip == "2.2.2.2" and rev.dst_port == 1234
        assert rev.reversed() == five

    def test_canonical_is_direction_independent(self):
        five = FiveTuple("1.1.1.1", "2.2.2.2", 1234, 80)
        assert five.canonical() == five.reversed().canonical()

    def test_port_validation(self):
        with pytest.raises(TraceError):
            FiveTuple("a", "b", -1, 80)
        with pytest.raises(TraceError):
            FiveTuple("a", "b", 80, 70000)

    def test_flow_record_validation(self):
        five = FiveTuple("a", "b", 1, 2)
        with pytest.raises(TraceError):
            FlowRecord(five, "l", bytes=-1.0, packets=1, start=0.0, end=1.0, carries_syn=True)
        with pytest.raises(TraceError):
            FlowRecord(five, "l", bytes=1.0, packets=1, start=2.0, end=1.0, carries_syn=True)

    def test_bytes_in_bin_prorates(self):
        five = FiveTuple("a", "b", 1, 2)
        flow = FlowRecord(five, "l", bytes=100.0, packets=1, start=0.0, end=10.0, carries_syn=True)
        assert flow.bytes_in_bin(0.0, 5.0) == pytest.approx(50.0)
        assert flow.bytes_in_bin(0.0, 10.0) == pytest.approx(100.0)
        assert flow.bytes_in_bin(20.0, 30.0) == 0.0
        assert flow.overlaps_bin(5.0, 6.0)
        assert not flow.overlaps_bin(11.0, 12.0)


class TestConnection:
    def make_connection(self, start=10.0) -> Connection:
        return Connection(
            initiator_ip="h1",
            responder_ip="s1",
            initiator_port=40000,
            responder_port=80,
            initiator_node="IPLS",
            responder_node="CLEV",
            forward_bytes=100.0,
            reverse_bytes=900.0,
            start=start,
            duration=30.0,
            application="web",
        )

    def test_forward_fraction(self):
        assert self.make_connection().forward_fraction == pytest.approx(0.1)

    def test_flow_records_directions(self):
        connection = self.make_connection()
        forward, reverse = connection.flow_records("IPLS->CLEV", "CLEV->IPLS")
        assert forward.link == "IPLS->CLEV" and forward.bytes == 100.0
        assert reverse.link == "CLEV->IPLS" and reverse.bytes == 900.0
        assert forward.carries_syn and not reverse.carries_syn
        assert forward.five_tuple.reversed() == reverse.five_tuple

    def test_syn_not_visible_for_straddling_connection(self):
        connection = self.make_connection(start=-5.0)
        forward, _ = connection.flow_records("a->b", "b->a", window_start=0.0)
        assert not forward.carries_syn

    def test_validation(self):
        with pytest.raises(TraceError):
            Connection("h", "s", 1, 2, "A", "B", -1.0, 1.0, 0.0, 1.0)
        with pytest.raises(TraceError):
            Connection("h", "s", 1, 2, "A", "B", 1.0, 1.0, 0.0, 0.0)


class TestTraceGenerator:
    def test_deterministic_with_seed(self):
        a = BidirectionalTraceGenerator(seed=7, connections_per_hour=200).generate(1800)
        b = BidirectionalTraceGenerator(seed=7, connections_per_hour=200).generate(1800)
        assert len(a.connections) == len(b.connections)
        assert a.connections[0].forward_bytes == b.connections[0].forward_bytes

    def test_flow_counts_match_connections(self):
        pair = BidirectionalTraceGenerator(seed=1, connections_per_hour=500).generate(1800)
        assert len(pair.a_to_b) + len(pair.b_to_a) == 2 * len(pair.connections)

    def test_straddling_fraction_roughly_respected(self):
        pair = BidirectionalTraceGenerator(
            seed=2, connections_per_hour=2000, straddling_fraction=0.2
        ).generate(3600)
        straddling = sum(1 for c in pair.connections if c.start < 0)
        fraction = straddling / len(pair.connections)
        assert 0.1 < fraction < 0.3

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            BidirectionalTraceGenerator(initiation_balance=2.0)
        with pytest.raises(ValidationError):
            BidirectionalTraceGenerator(connections_per_hour=0)
        with pytest.raises(ValidationError):
            BidirectionalTraceGenerator(straddling_fraction=1.0)
        with pytest.raises(ValidationError):
            BidirectionalTraceGenerator().generate(0.0)

    def test_true_forward_fraction_in_mix_range(self):
        pair = BidirectionalTraceGenerator(seed=3, connections_per_hour=3000).generate(3600)
        assert 0.1 < pair.true_forward_fraction("IPLS") < 0.4


class TestMeasureForwardFraction:
    def test_measured_f_close_to_ground_truth(self):
        pair = BidirectionalTraceGenerator(seed=4, connections_per_hour=4000).generate(7200)
        measurement = measure_forward_fraction(pair, bin_seconds=300.0)
        mean_ab, mean_ba = measurement.mean_f()
        assert abs(mean_ab - pair.true_forward_fraction("IPLS")) < 0.08
        assert abs(mean_ba - pair.true_forward_fraction("CLEV")) < 0.08

    def test_number_of_bins(self):
        pair = BidirectionalTraceGenerator(seed=5, connections_per_hour=500).generate(3600)
        measurement = measure_forward_fraction(pair, bin_seconds=300.0)
        assert measurement.n_bins == 12

    def test_spatial_stability_of_symmetric_traffic(self):
        pair = BidirectionalTraceGenerator(
            seed=6, connections_per_hour=4000, initiation_balance=0.5
        ).generate(7200)
        measurement = measure_forward_fraction(pair, bin_seconds=600.0)
        assert measurement.spatial_gap() < 0.1

    def test_unknown_fraction_grows_with_straddling(self):
        low = BidirectionalTraceGenerator(seed=7, connections_per_hour=2000, straddling_fraction=0.02).generate(3600)
        high = BidirectionalTraceGenerator(seed=7, connections_per_hour=2000, straddling_fraction=0.3).generate(3600)
        f_low = measure_forward_fraction(low).unknown_fraction
        f_high = measure_forward_fraction(high).unknown_fraction
        assert f_high > f_low

    def test_invalid_bin_size(self):
        pair = BidirectionalTraceGenerator(seed=8, connections_per_hour=100).generate(600)
        with pytest.raises(ValidationError):
            measure_forward_fraction(pair, bin_seconds=0.0)


class TestNetflow:
    def test_rate_one_is_exact(self):
        sampler = NetflowSampler(sampling_rate=1)
        assert sampler.sampled_volume(12345.0) == 12345.0

    def test_sampling_is_unbiased_on_average(self):
        sampler = NetflowSampler(sampling_rate=100, seed=0)
        true_volume = 1e7
        estimates = np.array([sampler.sampled_volume(true_volume) for _ in range(200)])
        assert abs(estimates.mean() - true_volume) / true_volume < 0.05

    def test_vectorised_matches_scalar_distribution(self):
        sampler = NetflowSampler(sampling_rate=50, seed=1)
        volumes = np.full(500, 1e6)
        estimates = sampler.sampled_volumes(volumes)
        assert estimates.shape == (500,)
        assert abs(estimates.mean() - 1e6) / 1e6 < 0.1

    def test_validation(self):
        with pytest.raises(ValidationError):
            NetflowSampler(sampling_rate=0)
        with pytest.raises(ValidationError):
            NetflowSampler().sampled_volume(-1.0)

    def test_od_aggregation_attributes_directions_correctly(self):
        connection = Connection(
            "h", "s", 1, 2, "A", "B", forward_bytes=10.0, reverse_bytes=30.0, start=0.0, duration=1.0
        )
        matrix = od_flows_from_connections([connection], ["A", "B"])
        np.testing.assert_allclose(matrix, [[0.0, 10.0], [30.0, 0.0]])

    def test_od_aggregation_unknown_node(self):
        connection = Connection(
            "h", "s", 1, 2, "A", "Z", forward_bytes=1.0, reverse_bytes=1.0, start=0.0, duration=1.0
        )
        with pytest.raises(ValidationError):
            od_flows_from_connections([connection], ["A", "B"])

    def test_self_pair_connections_rejected_by_default(self):
        connection = Connection(
            "h", "s", 1, 2, "A", "A", forward_bytes=5.0, reverse_bytes=3.0, start=0.0, duration=1.0
        )
        with pytest.raises(ValidationError, match="keep_self_pairs"):
            od_flows_from_connections([connection], ["A", "B"])

    def test_keep_self_pairs_accumulates_on_diagonal(self):
        connection = Connection(
            "h", "s", 1, 2, "A", "A", forward_bytes=5.0, reverse_bytes=3.0, start=0.0, duration=1.0
        )
        matrix = od_flows_from_connections([connection], ["A", "B"], keep_self_pairs=True)
        np.testing.assert_allclose(matrix, [[8.0, 0.0], [0.0, 0.0]])

    def test_od_aggregation_with_sampler(self):
        connections = [
            Connection("h", "s", 1, 2, "A", "B", 1e6, 3e6, 0.0, 1.0) for _ in range(20)
        ]
        sampled = od_flows_from_connections(connections, ["A", "B"], sampler=NetflowSampler(10, seed=2))
        exact = od_flows_from_connections(connections, ["A", "B"])
        assert abs(sampled.sum() - exact.sum()) / exact.sum() < 0.2

"""Tests for the sweep executor layer (PR 7).

Covers:

* :meth:`ScenarioRunner._column_batches` edge cases (jobs > cells, single
  column, empty grid, determinism),
* :func:`resolve_executor` — the auto/in-process/local-pool/instance ladder
  and the warn-once CPU cap on local pools,
* the remote wire plumbing (address parsing, length-prefixed framing),
* :class:`RemoteExecutor` failure modes (unreachable worker, protocol
  mismatch) raising :class:`ExecutorError` instead of degrading silently,
* a loopback two-daemon remote sweep bit-identical to the serial path on a
  streamed, spilled grid,
* worker-level streamed-fit memoisation: overlapping-window grids fit each
  (plan, window) once, without changing a single output bit or RNG draw.
"""

from __future__ import annotations

import io
import re
import socket
import threading
import time
import warnings

import numpy as np
import pytest

from repro.errors import ExecutorError, ValidationError
from repro.scenarios import (
    InProcessExecutor,
    LocalPoolExecutor,
    RemoteExecutor,
    Scenario,
    ScenarioRunner,
    SpilledSeries,
    SweepSharedState,
    run_sweep_worker,
)
from repro.scenarios import executors as executors_module
from repro.scenarios.executors import (
    SWEEP_WORKER_PROTOCOL,
    _parse_address,
    _recv_message,
    _send_message,
    resolve_executor,
)

SMALL = {"bins_per_week": 36, "max_bins": 4}


def _items(cells):
    return [
        (index, cell, ScenarioRunner._dataset_key(cell))
        for index, cell in enumerate(cells)
    ]


class TestColumnBatches:
    def test_empty_grid_yields_no_batches(self):
        assert ScenarioRunner._column_batches([], 4) == []

    def test_single_column_single_job_stays_whole(self):
        cells = [
            Scenario(dataset="geant", prior=prior, **SMALL)
            for prior in ("gravity", "stable_f", "stable_fp", "measured")
        ]
        batches = ScenarioRunner._column_batches(_items(cells), 1)
        assert len(batches) == 1
        assert [index for index, _, _ in batches[0]] == [0, 1, 2, 3]

    def test_jobs_beyond_cells_split_to_singletons(self):
        cells = [
            Scenario(dataset="geant", prior=prior, **SMALL)
            for prior in ("gravity", "stable_f")
        ]
        batches = ScenarioRunner._column_batches(_items(cells), 8)
        # Splitting stops at one cell per batch; no empty batches appear.
        assert all(len(batch) == 1 for batch in batches)
        assert sorted(index for batch in batches for index, _, _ in batch) == [0, 1]

    def test_distinct_columns_never_merge(self):
        cells = [
            Scenario(dataset="geant", prior="gravity", dataset_seed=seed, **SMALL)
            for seed in (1, 2, 3)
        ]
        batches = ScenarioRunner._column_batches(_items(cells), 1)
        assert len(batches) == 3
        assert all(len(batch) == 1 for batch in batches)

    def test_batching_is_deterministic(self):
        cells = [
            Scenario(dataset="geant", prior=prior, dataset_seed=seed, **SMALL)
            for seed in (1, 2)
            for prior in ("gravity", "stable_f", "stable_fp")
        ]
        first = ScenarioRunner._column_batches(_items(cells), 4)
        second = ScenarioRunner._column_batches(_items(cells), 4)
        assert [
            [index for index, _, _ in batch] for batch in first
        ] == [[index for index, _, _ in batch] for batch in second]

    def test_all_items_survive_splitting(self):
        cells = [
            Scenario(dataset="geant", prior="gravity", target_week=week, n_weeks=8, **SMALL)
            for week in range(7)
        ]
        batches = ScenarioRunner._column_batches(_items(cells), 3)
        assert len(batches) >= 3
        assert sorted(index for batch in batches for index, _, _ in batch) == list(range(7))


class TestResolveExecutor:
    def test_auto_prefers_pool_when_cpus_and_cells_allow(self):
        executor, plan_jobs = resolve_executor(None, jobs=4, n_cells=4, cpu_count=8)
        assert isinstance(executor, LocalPoolExecutor)
        assert executor.jobs == 4
        assert plan_jobs == 4

    def test_auto_collapses_to_in_process_on_one_cpu(self, monkeypatch):
        monkeypatch.setattr(executors_module, "_JOBS_CAP_WARNED", True)
        executor, _ = resolve_executor("auto", jobs=4, n_cells=4, cpu_count=1)
        assert isinstance(executor, InProcessExecutor)

    def test_auto_collapses_to_in_process_on_one_cell(self):
        executor, _ = resolve_executor(None, jobs=4, n_cells=1, cpu_count=8)
        assert isinstance(executor, InProcessExecutor)

    def test_jobs_none_means_one_per_cpu(self):
        executor, plan_jobs = resolve_executor(None, jobs=None, n_cells=4, cpu_count=6)
        assert isinstance(executor, LocalPoolExecutor)
        assert executor.jobs == 6
        assert plan_jobs == 6

    def test_named_in_process(self):
        for name in ("in-process", "serial"):
            executor, _ = resolve_executor(name, jobs=4, n_cells=4, cpu_count=8)
            assert isinstance(executor, InProcessExecutor)

    def test_named_local_pool_caps_at_cpu(self, monkeypatch):
        monkeypatch.setattr(executors_module, "_JOBS_CAP_WARNED", True)
        executor, plan_jobs = resolve_executor("local-pool", jobs=16, n_cells=4, cpu_count=2)
        assert isinstance(executor, LocalPoolExecutor)
        assert executor.jobs == 2
        assert plan_jobs == 16  # the uncapped request survives in the plan

    def test_instance_passes_through_uncapped(self):
        instance = RemoteExecutor([("127.0.0.1", 1)])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            executor, plan_jobs = resolve_executor(instance, jobs=64, n_cells=4, cpu_count=1)
        assert executor is instance
        assert plan_jobs == 64

    def test_remote_by_name_needs_addresses(self):
        with pytest.raises(ValidationError, match="worker addresses"):
            resolve_executor("remote", jobs=4, n_cells=4, cpu_count=8)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown sweep executor"):
            resolve_executor("cloud", jobs=1, n_cells=1, cpu_count=1)

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(ValidationError, match="jobs"):
            resolve_executor(None, jobs=0, n_cells=1, cpu_count=1)


class TestJobsCapWarning:
    @pytest.fixture(autouse=True)
    def _reset_warned(self, monkeypatch):
        monkeypatch.setattr(executors_module, "_JOBS_CAP_WARNED", False)

    def test_warns_once_with_effective_count(self):
        with pytest.warns(RuntimeWarning, match=r"jobs=8 exceeds this host's 2 CPU\(s\)"):
            executor, plan_jobs = resolve_executor(
                "local-pool", jobs=8, n_cells=4, cpu_count=2
            )
        assert executor.jobs == 2 and plan_jobs == 8
        # The cap is a property of the host: later sweeps stay quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_executor("local-pool", jobs=8, n_cells=4, cpu_count=2)

    def test_no_warning_when_under_cap(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_executor("local-pool", jobs=2, n_cells=4, cpu_count=4)

    def test_warning_points_at_remote_executor(self):
        with pytest.warns(RuntimeWarning, match="--remote-workers"):
            resolve_executor(None, jobs=8, n_cells=4, cpu_count=2)


class TestWireFormat:
    def test_parse_address_host_port_string(self):
        assert _parse_address("worker-3.lab:9100") == ("worker-3.lab", 9100)

    def test_parse_address_pair(self):
        assert _parse_address(("10.0.0.7", 9100)) == ("10.0.0.7", 9100)

    def test_parse_address_last_colon_wins(self):
        assert _parse_address("::1:9100") == ("::1", 9100)

    def test_parse_address_rejects_missing_port(self):
        with pytest.raises(ValidationError, match="HOST:PORT"):
            _parse_address("just-a-host")

    def test_parse_address_rejects_bad_port(self):
        with pytest.raises(ValidationError, match="non-integer port"):
            _parse_address("host:http")

    def test_framing_roundtrips_arbitrary_payloads(self):
        left, right = socket.socketpair()
        try:
            message = {"op": "batch", "values": np.arange(5.0), "nested": {"a": (1, 2)}}
            _send_message(left, message)
            received = _recv_message(right)
            assert received["op"] == "batch"
            np.testing.assert_array_equal(received["values"], message["values"])
        finally:
            left.close()
            right.close()

    def test_truncated_frame_raises_eof(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x10partial")
            left.close()
            with pytest.raises(EOFError):
                _recv_message(right)
        finally:
            right.close()


def _start_worker(max_connections=1):
    """Spawn ``run_sweep_worker`` in a thread; return (thread, "host:port")."""
    output = io.StringIO()
    thread = threading.Thread(
        target=run_sweep_worker,
        kwargs=dict(port=0, max_connections=max_connections, output=output),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        match = re.search(r"listening on ([0-9.]+):(\d+)", output.getvalue())
        if match:
            return thread, f"{match.group(1)}:{match.group(2)}"
        time.sleep(0.01)
    raise RuntimeError("sweep worker did not announce its port")


class TestRemoteExecutorFailures:
    def test_unreachable_worker_raises_executor_error(self):
        # Bind-then-close guarantees a port with nothing listening on it.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        executor = RemoteExecutor([("127.0.0.1", port)], connect_timeout=2.0)
        cells = [Scenario(dataset="geant", prior="gravity", **SMALL)]
        with pytest.raises(ExecutorError, match="unreachable"):
            ScenarioRunner().run_cells(cells, executor=executor)

    def test_protocol_mismatch_raises_executor_error(self):
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def impostor():
            conn, _ = server.accept()
            with conn:
                _recv_message(conn)  # the ping
                _send_message(conn, {"ok": True, "protocol": SWEEP_WORKER_PROTOCOL + 1})

        thread = threading.Thread(target=impostor, daemon=True)
        thread.start()
        try:
            executor = RemoteExecutor([("127.0.0.1", port)], connect_timeout=2.0)
            cells = [Scenario(dataset="geant", prior="gravity", **SMALL)]
            with pytest.raises(ExecutorError, match="protocol"):
                ScenarioRunner().run_cells(cells, executor=executor)
        finally:
            thread.join(timeout=5)
            server.close()

    def test_no_addresses_rejected(self):
        with pytest.raises(ValidationError, match="at least one worker"):
            RemoteExecutor([])


class TestRemoteLoopback:
    def test_two_workers_match_serial_bitwise_on_spilled_streamed_grid(self, tmp_path):
        kwargs = dict(
            priors=("stable_fp", "gravity"),
            datasets=("geant",),
            base=dict(SMALL),
            stream=True,
            n_weeks=2,
            spill_dir=str(tmp_path / "spill"),
        )
        serial = ScenarioRunner().sweep(jobs=1, executor="in-process", **kwargs)
        workers = [_start_worker(max_connections=1) for _ in range(2)]
        executor = RemoteExecutor([address for _, address in workers])
        remote = ScenarioRunner().sweep(jobs=4, executor=executor, **kwargs)
        for thread, _ in workers:
            thread.join(timeout=10)
        assert not serial.failures and not remote.failures
        assert len(remote.results) == len(serial.results) == 2
        assert remote.timing["executor"] == "remote"
        for serial_cell, remote_cell in zip(serial.results, remote.results):
            assert serial_cell.scenario == remote_cell.scenario
            # Spilled handles came back over the wire as paths into the
            # shared spill directory; loading them must reproduce the serial
            # arrays exactly.
            assert isinstance(remote_cell.errors, SpilledSeries)
            np.testing.assert_array_equal(
                np.asarray(serial_cell.errors), np.asarray(remote_cell.errors)
            )
            np.testing.assert_array_equal(
                np.asarray(serial_cell.prior_errors), np.asarray(remote_cell.prior_errors)
            )


def _overlapping_cells(n_targets=3):
    """Overlapping-window grid: one calibration week, ``n_targets`` targets."""
    return [
        Scenario(
            dataset="geant",
            prior="stable_fp",
            stream=True,
            calibration_week=0,
            target_week=week,
            n_weeks=n_targets + 1,
            **SMALL,
        )
        for week in range(1, n_targets + 1)
    ]


class TestFitMemoisation:
    @pytest.fixture
    def fit_calls(self, monkeypatch):
        from repro.core import streaming as streaming_module

        calls: list[int] = []
        original = streaming_module.fit_stable_fp_streaming

        def counting(source, **kwargs):
            calls.append(source.n_bins)
            return original(source, **kwargs)

        monkeypatch.setattr(streaming_module, "fit_stable_fp_streaming", counting)
        return calls

    def test_shared_state_fit_builds_once_per_key(self):
        shared = SweepSharedState()
        built = []
        assert shared.fit(("k", 1), lambda: built.append(1) or "a") == "a"
        assert shared.fit(("k", 1), lambda: built.append(2) or "b") == "a"
        assert shared.fit(("k", 2), lambda: built.append(3) or "c") == "c"
        assert built == [1, 3]
        assert shared.fit_builds == 2

    def test_overlapping_windows_fit_once_when_memoised(self, fit_calls):
        cells = _overlapping_cells(3)
        result = ScenarioRunner(fit_memo=True).run_cells(
            cells, executor=InProcessExecutor()
        )
        assert not result.failures
        # All three cells calibrate on week 0 of the same plan: one fit.
        assert len(fit_calls) == 1

    def test_overlapping_windows_refit_when_memo_disabled(self, fit_calls):
        cells = _overlapping_cells(3)
        result = ScenarioRunner(fit_memo=False).run_cells(
            cells, executor=InProcessExecutor()
        )
        assert not result.failures
        assert len(fit_calls) == 3

    def test_memoisation_changes_no_output_bit(self):
        cells = _overlapping_cells(3)
        memoised = ScenarioRunner(fit_memo=True).run_cells(
            cells, executor=InProcessExecutor()
        )
        fresh = ScenarioRunner(fit_memo=False).run_cells(
            cells, executor=InProcessExecutor()
        )
        assert not memoised.failures and not fresh.failures
        for left, right in zip(memoised.results, fresh.results):
            np.testing.assert_array_equal(left.errors, right.errors)
            np.testing.assert_array_equal(left.prior_errors, right.prior_errors)

    def test_memoisation_leaves_synthesis_replay_untouched(self, monkeypatch):
        # The memo must only skip *fit* recomputation — the synthesis RNG
        # draw pattern (replayed spans per read) has to stay identical, or
        # the determinism contract between executors breaks.
        from repro.synthesis import generator as generator_module

        spans: list[tuple[int, int]] = []
        original = generator_module.GenerationPlan._replay_span

        def counting(self, rng, start, stop):
            spans.append((start, stop))
            return original(self, rng, start, stop)

        monkeypatch.setattr(generator_module.GenerationPlan, "_replay_span", counting)

        cells = _overlapping_cells(1)  # one cell: memo on/off do identical work
        ScenarioRunner(fit_memo=True).run_cells(cells, executor=InProcessExecutor())
        memo_spans = list(spans)
        spans.clear()
        ScenarioRunner(fit_memo=False).run_cells(cells, executor=InProcessExecutor())
        assert spans == memo_spans


class TestExecutorSelectionEndToEnd:
    def test_sweep_reports_executor_in_timing(self):
        result = ScenarioRunner().sweep(
            priors=("gravity",), datasets=("geant",), base=dict(SMALL), jobs=1
        )
        assert result.timing["executor"] == "in-process"

    def test_forced_local_pool_matches_in_process(self, monkeypatch):
        monkeypatch.setattr(executors_module, "_JOBS_CAP_WARNED", True)
        kwargs = dict(
            priors=("stable_f", "gravity"), datasets=("geant",), base=dict(SMALL)
        )
        serial = ScenarioRunner().sweep(jobs=1, **kwargs)
        pooled = ScenarioRunner().sweep(jobs=2, executor="local-pool", **kwargs)
        assert pooled.timing["executor"] == "local-pool"
        for left, right in zip(serial.results, pooled.results):
            np.testing.assert_array_equal(left.errors, right.errors)

"""End-to-end integration tests across the whole stack.

These mirror the paper's workflows: generate realistic traffic, fit the model,
build priors, run the estimation pipeline on simulated measurements, and make
sure the qualitative conclusions hold at small scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitting import fit_stable_fp
from repro.core.gravity import gravity_series
from repro.core.metrics import mean_relative_error, percent_improvement, rel_l2_temporal_error
from repro.core.priors import GravityPrior, MeasuredParameterPrior, StableFPPrior
from repro.estimation.linear_system import simulate_link_loads
from repro.estimation.pipeline import TMEstimator
from repro.synthesis.generator import ICTMGenerator, SyntheticTMConfig
from repro.traces.matching import measure_forward_fraction
from repro.traces.netflow import NetflowSampler, od_flows_from_connections
from repro.traces.trace_generator import BidirectionalTraceGenerator


class TestFitAndEstimateWorkflow:
    def test_week_over_week_estimation_workflow(self, small_geant_dataset):
        """Calibrate on week 1, estimate week 2 from link counts only."""
        dataset = small_geant_dataset
        calibration, target = dataset.week(0), dataset.week(1)[:12]

        calibration_fit = fit_stable_fp(calibration)
        assert 0.05 < calibration_fit.forward_fraction < 0.45

        system = simulate_link_loads(dataset.topology, target, noise_std=0.01, seed=3)
        gravity_prior = GravityPrior().series(system.ingress, system.egress, nodes=target.nodes)
        ic_prior = StableFPPrior.from_fit(calibration_fit).series(
            system.ingress, system.egress, nodes=target.nodes
        )
        estimator = TMEstimator()
        results = estimator.compare_priors(
            system, {"gravity": gravity_prior, "ic": ic_prior}, target
        )
        improvement = percent_improvement(results["gravity"].errors, results["ic"].errors)
        assert float(np.mean(improvement)) > 0.0

    def test_measured_prior_is_at_least_as_good_as_stable_fp(self, small_geant_dataset):
        dataset = small_geant_dataset
        target = dataset.week(1)[:12]
        system = simulate_link_loads(dataset.topology, target, noise_std=0.01, seed=4)
        measured_fit = fit_stable_fp(target)
        calibration_fit = fit_stable_fp(dataset.week(0))
        measured_prior = MeasuredParameterPrior.from_fit(measured_fit).series(nodes=target.nodes)
        stable_fp_prior = StableFPPrior.from_fit(calibration_fit).series(
            system.ingress, system.egress, nodes=target.nodes
        )
        measured_error = mean_relative_error(target, measured_prior)
        stable_fp_error = mean_relative_error(target, stable_fp_prior)
        assert measured_error <= stable_fp_error + 0.02


class TestGenerationToFittingConsistency:
    def test_fit_recovers_generating_parameters_at_low_noise(self):
        config = SyntheticTMConfig(
            forward_fraction=0.25,
            noise_sigma=0.02,
            f_jitter_sigma=0.0,
            f_responder_sigma=0.0,
            spatial_bias_sigma=0.0,
        )
        generator = ICTMGenerator([f"n{i}" for i in range(10)], config, seed=3)
        series, truth = generator.generate(48)
        fit = fit_stable_fp(series)
        assert fit.forward_fraction == pytest.approx(0.25, abs=0.03)
        correlation = np.corrcoef(fit.preference, truth.preference)[0, 1]
        assert correlation > 0.99

    def test_ic_beats_gravity_on_ic_structured_traffic(self):
        generator = ICTMGenerator([f"n{i}" for i in range(12)], seed=9)
        series, _ = generator.generate(36)
        fit = fit_stable_fp(series)
        gravity_error = rel_l2_temporal_error(series, gravity_series(series))
        assert fit.mean_error < float(np.mean(gravity_error))


class TestTraceToModelConsistency:
    def test_trace_measured_f_matches_od_level_f(self):
        """The f measured from link traces agrees with the f implied by OD volumes."""
        generator = BidirectionalTraceGenerator(
            "IPLS", "CLEV", connections_per_hour=4000, seed=12
        )
        pair = generator.generate(7200)
        measurement = measure_forward_fraction(pair, bin_seconds=600.0)
        matrix = od_flows_from_connections(pair.connections, ["IPLS", "CLEV"])
        forward_bytes = sum(
            c.forward_bytes for c in pair.connections if c.initiator_node == "IPLS"
        )
        reverse_bytes = sum(
            c.reverse_bytes for c in pair.connections if c.initiator_node == "IPLS"
        )
        od_level_f = forward_bytes / (forward_bytes + reverse_bytes)
        measured_f, _ = measurement.mean_f()
        assert measured_f == pytest.approx(od_level_f, abs=0.08)
        # The OD matrix contains every byte of every connection.
        assert matrix.sum() == pytest.approx(sum(c.total_bytes for c in pair.connections))

    def test_netflow_sampling_preserves_od_structure(self):
        generator = BidirectionalTraceGenerator(
            "IPLS", "KSCY", connections_per_hour=6000, seed=13
        )
        pair = generator.generate(3600)
        exact = od_flows_from_connections(pair.connections, ["IPLS", "KSCY"])
        sampled = od_flows_from_connections(
            pair.connections, ["IPLS", "KSCY"], sampler=NetflowSampler(100, seed=1)
        )
        assert abs(sampled.sum() - exact.sum()) / exact.sum() < 0.15
        # Every OD entry stays close to its exact value at this sampling rate.
        relative = np.abs(sampled - exact) / np.maximum(exact, 1.0)
        assert np.max(relative) < 0.2


class TestPersistenceWorkflow:
    def test_generate_save_load_fit(self, tmp_path, small_geant_dataset):
        week = small_geant_dataset.week(0)
        path = tmp_path / "week.npz"
        week.save(path)
        from repro.core.traffic_matrix import TrafficMatrixSeries

        loaded = TrafficMatrixSeries.load(path)
        original_fit = fit_stable_fp(week)
        loaded_fit = fit_stable_fp(loaded)
        assert loaded_fit.forward_fraction == pytest.approx(original_fit.forward_fraction)

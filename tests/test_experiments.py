"""Tests for the experiment drivers: each figure's qualitative claim at small scale.

These are integration tests of the full stack (synthesis → fitting → priors →
estimation) run at deliberately small scale so the whole module stays fast.
They check the *shape* of each result — who wins, orderings, ranges — not
absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.example_network import run_example_network
from repro.experiments.fig3_model_fit import run_model_fit
from repro.experiments.fig4_f_from_traces import run_f_from_traces
from repro.experiments.fig5_f_stability import run_f_stability
from repro.experiments.fig6_preference_stability import run_preference_stability
from repro.experiments.fig7_preference_ccdf import run_preference_ccdf
from repro.experiments.fig8_preference_vs_egress import run_preference_vs_egress
from repro.experiments.fig9_activity_timeseries import run_activity_timeseries
from repro.experiments.fig10_routing_asymmetry import run_routing_asymmetry
from repro.experiments.fig11_estimation_measured import run_estimation_measured
from repro.experiments.fig12_estimation_stable_fp import run_estimation_stable_fp
from repro.experiments.fig13_estimation_stable_f import run_estimation_stable_f

SMALL = {"bins_per_week": 36}


def test_registry_covers_every_figure():
    assert set(EXPERIMENTS) == {
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "fig11", "fig12", "fig13",
    }


class TestFig2Example:
    def test_paper_probabilities(self):
        result = run_example_network()
        conditionals = result.conditional_egress_given_ingress
        assert conditionals["A"] == pytest.approx(200 / 403, abs=1e-9)
        assert conditionals["B"] == pytest.approx(102 / 109, abs=1e-9)
        assert conditionals["C"] == pytest.approx(101 / 106, abs=1e-9)
        assert result.marginal_egress == pytest.approx(403 / 618, abs=1e-9)

    def test_gravity_prediction_fails(self):
        result = run_example_network()
        assert not result.gravity_would_predict_equal

    def test_total_traffic(self):
        result = run_example_network()
        assert result.traffic_matrix.sum() == pytest.approx(618.0)

    def test_format_table(self):
        assert "P[E=A | I=B]" in run_example_network().format_table()


class TestFig3ModelFit:
    @pytest.mark.parametrize("dataset", ["geant", "totem"])
    def test_ic_fits_better_than_gravity(self, dataset):
        result = run_model_fit(dataset, **SMALL)
        assert result.mean_improvement > 0.0
        assert float(np.mean(result.ic_errors)) < float(np.mean(result.gravity_errors))

    def test_ic_has_fewer_degrees_of_freedom(self):
        result = run_model_fit("geant", **SMALL)
        assert result.ic_dof < result.gravity_dof

    def test_fitted_f_in_plausible_range(self):
        result = run_model_fit("geant", **SMALL)
        assert 0.1 < result.fitted_f < 0.45

    def test_format_table(self):
        assert "mean improvement %" in run_model_fit("geant", **SMALL).format_table()


class TestFig4FTraces:
    def test_measured_f_in_paper_range(self):
        result = run_f_from_traces(duration_seconds=3600.0, connections_per_hour=2500)
        mean_ab, mean_ba = result.mean_measured_f
        assert 0.15 < mean_ab < 0.35
        assert 0.15 < mean_ba < 0.35

    def test_spatial_stability(self):
        result = run_f_from_traces(duration_seconds=3600.0, connections_per_hour=2500)
        assert result.measurement.spatial_gap() < 0.1

    def test_unknown_fraction_below_paper_bound(self):
        result = run_f_from_traces(duration_seconds=3600.0, connections_per_hour=2500)
        assert result.measurement.unknown_fraction < 0.2

    def test_per_application_ordering(self):
        result = run_f_from_traces(duration_seconds=1800.0, connections_per_hour=1000)
        assert result.per_application_f["web"] < result.per_application_f["p2p"]

    def test_format_table(self):
        table = run_f_from_traces(duration_seconds=1800.0, connections_per_hour=800).format_table()
        assert "unknown traffic fraction" in table


class TestFig5FStability:
    def test_f_stable_across_weeks(self):
        result = run_f_stability("totem", n_weeks=3, bins_per_week=36)
        assert result.weekly_f.shape == (3,)
        assert result.stability.coefficient_of_variation < 0.15
        assert np.all(result.weekly_f > 0.05)

    def test_format_table(self):
        table = run_f_stability("totem", n_weeks=2, bins_per_week=36).format_table()
        assert "coefficient of variation" in table


class TestFig6PreferenceStability:
    def test_preference_stable_and_recovers_truth(self):
        result = run_preference_stability("geant", n_weeks=2, bins_per_week=36)
        assert result.stability.week_to_week_correlation > 0.9
        assert result.truth_correlation > 0.8

    def test_preference_is_highly_variable_across_nodes(self):
        result = run_preference_stability("geant", n_weeks=2, bins_per_week=36)
        assert result.spread_ratio > 5.0

    def test_format_table(self):
        table = run_preference_stability("geant", n_weeks=2, bins_per_week=36).format_table()
        assert "week-to-week correlation" in table


class TestFig7PreferenceCCDF:
    def test_lognormal_preferred(self):
        result = run_preference_ccdf("geant", **SMALL)
        assert result.lognormal_preferred

    def test_ccdf_shapes(self):
        result = run_preference_ccdf("geant", **SMALL)
        assert result.ccdf_values.shape == result.ccdf_probabilities.shape

    def test_format_table(self):
        assert "lognormal" in run_preference_ccdf("geant", **SMALL).format_table()


class TestFig8PreferenceVsEgress:
    def test_preference_not_explained_by_egress_above_median(self):
        result = run_preference_vs_egress("geant", **SMALL)
        # Among high-traffic nodes the correlation should be visibly below a
        # perfect 1.0 (the paper: "little correlation").
        assert result.correlation_above_median < 0.9

    def test_preference_uncorrelated_with_activity(self):
        result = run_preference_vs_egress("geant", **SMALL)
        assert abs(result.preference_activity_correlation) < 0.6

    def test_format_table(self):
        assert "corr(P, egress share)" in run_preference_vs_egress("geant", **SMALL).format_table()


class TestFig9Activity:
    def test_diurnal_period_about_one_day(self):
        result = run_activity_timeseries("geant", bins_per_week=288)
        assert result.diurnal_period_days == pytest.approx(1.0, rel=0.25)

    def test_node_ordering(self):
        result = run_activity_timeseries("geant", bins_per_week=288)
        assert result.selected_series["largest"].mean() > result.selected_series["smallest"].mean()

    def test_format_table(self):
        assert "weekend/weekday" in run_activity_timeseries("geant", bins_per_week=96).format_table()


class TestFig10RoutingAsymmetry:
    def test_simplified_model_degrades_with_asymmetry(self):
        result = run_routing_asymmetry(n_nodes=8, n_bins=24, asymmetry_levels=(0.0, 0.2))
        assert result.simplified_errors[1] > result.simplified_errors[0]

    def test_simplified_still_beats_gravity(self):
        result = run_routing_asymmetry(n_nodes=8, n_bins=24, asymmetry_levels=(0.0, 0.1))
        assert np.all(result.simplified_errors < result.gravity_errors)

    def test_oracle_error_does_not_grow_with_asymmetry(self):
        """The general model (true f_ij) absorbs asymmetry; the simplified model cannot."""
        result = run_routing_asymmetry(n_nodes=8, n_bins=24, asymmetry_levels=(0.0, 0.1, 0.2))
        oracle_growth = result.general_oracle_errors[-1] - result.general_oracle_errors[0]
        simplified_growth = result.simplified_errors[-1] - result.simplified_errors[0]
        assert oracle_growth < 0.01
        assert simplified_growth > oracle_growth

    def test_format_table(self):
        table = run_routing_asymmetry(n_nodes=6, n_bins=12, asymmetry_levels=(0.0, 0.1)).format_table()
        assert "asymmetry level" in table


ESTIMATION_SMALL = {"bins_per_week": 36, "max_bins": 12}


class TestEstimationExperiments:
    @pytest.mark.parametrize("dataset", ["geant", "totem"])
    def test_measured_prior_beats_gravity(self, dataset):
        result = run_estimation_measured(dataset, **ESTIMATION_SMALL)
        assert result.mean_improvement > 0.0

    @pytest.mark.parametrize("dataset", ["geant", "totem"])
    def test_stable_fp_prior_beats_gravity(self, dataset):
        # The stable-fP prior needs a reasonably long calibration week for the
        # fitted preference to stabilise, so this test uses a larger (but
        # still reduced) workload than the other estimation checks.
        result = run_estimation_stable_fp(dataset, bins_per_week=96, max_bins=16)
        assert result.mean_improvement > 0.0

    def test_stable_f_prior_beats_gravity_on_geant(self):
        result = run_estimation_stable_f("geant", **ESTIMATION_SMALL)
        assert result.mean_improvement > 0.0

    def test_stable_f_is_weakest_ic_prior(self):
        stable_fp = run_estimation_stable_fp("geant", target_week=1, **ESTIMATION_SMALL)
        stable_f = run_estimation_stable_f("geant", target_week=1, **ESTIMATION_SMALL)
        assert stable_f.mean_improvement <= stable_fp.mean_improvement + 2.0

    def test_estimation_beats_raw_prior(self):
        result = run_estimation_measured("geant", **ESTIMATION_SMALL)
        assert float(np.mean(result.ic_errors)) <= float(np.mean(result.ic_prior_errors)) + 1e-6

    def test_format_table(self):
        table = run_estimation_measured("geant", **ESTIMATION_SMALL).format_table()
        assert "mean improvement %" in table
        assert "scenario" in table

    def test_stable_fp_rejects_same_week(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            run_estimation_stable_fp("geant", calibration_week=0, target_week=0, **ESTIMATION_SMALL)

"""Tests for the cyclostationary activity model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization.activity_analysis import dominant_period
from repro.errors import ShapeError, ValidationError
from repro.synthesis.activity import ActivityModel
from repro.synthesis.cyclostationary import CyclostationaryModel


@pytest.fixture(scope="module")
def diurnal_activity():
    model = ActivityModel(5, noise_sigma=0.05, seed=4)
    return model.generate(3 * 288, bin_seconds=300.0)  # three days of 5-minute bins


class TestFitting:
    def test_reconstruction_tracks_the_data(self, diurnal_activity):
        model = CyclostationaryModel(n_components=6).fit(diurnal_activity, bin_seconds=300.0)
        reconstruction = model.reconstruct(diurnal_activity.shape[0])
        relative = np.abs(reconstruction - diurnal_activity) / diurnal_activity.mean(axis=0)
        assert float(np.median(relative)) < 0.25

    def test_preserves_mean_levels(self, diurnal_activity):
        model = CyclostationaryModel().fit(diurnal_activity, bin_seconds=300.0)
        reconstruction = model.reconstruct(diurnal_activity.shape[0])
        np.testing.assert_allclose(
            reconstruction.mean(axis=0), diurnal_activity.mean(axis=0), rtol=0.1
        )

    def test_generated_series_keeps_daily_period(self, diurnal_activity):
        model = CyclostationaryModel(n_components=4).fit(diurnal_activity, bin_seconds=300.0)
        generated = model.generate(2 * 288, noise=False)
        period = dominant_period(generated[:, 0], bin_seconds=300.0)
        assert period == pytest.approx(86400.0, rel=0.15)

    def test_generation_with_noise_is_seeded(self, diurnal_activity):
        model = CyclostationaryModel().fit(diurnal_activity, bin_seconds=300.0)
        a = model.generate(100, seed=3)
        b = model.generate(100, seed=3)
        c = model.generate(100, seed=4)
        np.testing.assert_allclose(a, b)
        assert not np.allclose(a, c)

    def test_generated_values_nonnegative(self, diurnal_activity):
        model = CyclostationaryModel().fit(diurnal_activity, bin_seconds=300.0)
        assert np.all(model.generate(500) >= 0)

    def test_default_length_is_one_week(self, diurnal_activity):
        model = CyclostationaryModel().fit(diurnal_activity, bin_seconds=300.0)
        assert model.generate(noise=False).shape[0] == 2016


class TestValidation:
    def test_requires_fit_before_use(self):
        with pytest.raises(ValidationError):
            CyclostationaryModel().generate(10)

    def test_rejects_short_series(self):
        with pytest.raises(ShapeError):
            CyclostationaryModel(n_components=4).fit(np.ones((5, 3)))

    def test_rejects_bad_components(self):
        with pytest.raises(ValidationError):
            CyclostationaryModel(n_components=0)

    def test_rejects_bad_bin_size(self):
        with pytest.raises(ValidationError):
            CyclostationaryModel().fit(np.ones((100, 2)), bin_seconds=0.0)

    def test_is_fitted_flag(self, diurnal_activity):
        model = CyclostationaryModel()
        assert not model.is_fitted
        model.fit(diurnal_activity, bin_seconds=300.0)
        assert model.is_fitted
        assert model.n_nodes == diurnal_activity.shape[1]

"""Property-based tests (hypothesis) for core invariants.

These exercise the model algebra, the metrics, IPF, routing and the priors on
randomly generated inputs, checking invariants that must hold for *every*
input rather than for hand-picked examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.gravity import gravity_matrix
from repro.core.ic_model import simplified_ic_matrix, simplified_ic_series
from repro.core.metrics import percent_improvement, rel_l2_temporal_error
from repro.core.priors import estimate_activity_from_marginals, stable_f_closed_form
from repro.core.traffic_matrix import TrafficMatrix, TrafficMatrixSeries
from repro.estimation.ipf import iterative_proportional_fitting
from repro.topology.library import random_topology
from repro.topology.routing import build_routing_matrix

# -- strategies -------------------------------------------------------------

node_counts = st.integers(min_value=2, max_value=8)
forward_fractions = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)


def positive_vector(n: int, min_value: float = 0.0, max_value: float = 1e6):
    return arrays(
        dtype=float,
        shape=n,
        elements=st.floats(min_value=min_value, max_value=max_value, allow_nan=False, allow_infinity=False),
    )


@st.composite
def ic_inputs(draw):
    n = draw(node_counts)
    forward = draw(forward_fractions)
    activity = draw(positive_vector(n, min_value=0.0, max_value=1e6))
    preference = draw(positive_vector(n, min_value=1e-3, max_value=1.0))
    return forward, activity, preference


# -- IC model algebra --------------------------------------------------------


@given(ic_inputs())
@settings(max_examples=60, deadline=None)
def test_ic_matrix_total_equals_total_activity(inputs):
    forward, activity, preference = inputs
    matrix = simplified_ic_matrix(forward, activity, preference)
    assert matrix.sum() == pytest.approx(activity.sum(), rel=1e-9, abs=1e-6)


@given(ic_inputs())
@settings(max_examples=60, deadline=None)
def test_ic_matrix_nonnegative(inputs):
    forward, activity, preference = inputs
    matrix = simplified_ic_matrix(forward, activity, preference)
    assert np.all(matrix >= 0)


@given(ic_inputs())
@settings(max_examples=60, deadline=None)
def test_ic_marginal_identities(inputs):
    forward, activity, preference = inputs
    normalised = preference / preference.sum()
    matrix = simplified_ic_matrix(forward, activity, normalised)
    np.testing.assert_allclose(
        matrix.sum(axis=1),
        forward * activity + (1 - forward) * normalised * activity.sum(),
        rtol=1e-8,
        atol=1e-6,
    )
    np.testing.assert_allclose(
        matrix.sum(axis=0),
        (1 - forward) * activity + forward * normalised * activity.sum(),
        rtol=1e-8,
        atol=1e-6,
    )


@given(ic_inputs())
@settings(max_examples=40, deadline=None)
def test_ic_transpose_symmetry_under_f_half(inputs):
    """At f = 0.5 the IC matrix is symmetric (forward and reverse are equal)."""
    _, activity, preference = inputs
    matrix = simplified_ic_matrix(0.5, activity, preference)
    np.testing.assert_allclose(matrix, matrix.T, rtol=1e-9, atol=1e-6)


# -- gravity model ------------------------------------------------------------


@given(node_counts, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_gravity_preserves_marginals_when_totals_agree(n, seed):
    rng = np.random.default_rng(seed)
    ingress = rng.random(n) * 100 + 1.0
    egress = rng.permutation(ingress)
    estimate = gravity_matrix(ingress, egress)
    np.testing.assert_allclose(estimate.sum(axis=1), ingress, rtol=1e-9)
    np.testing.assert_allclose(estimate.sum(axis=0), egress, rtol=1e-9)


# -- marginal-based parameter recovery (Eqs. 8, 11-12) -------------------------


@given(ic_inputs())
@settings(max_examples=40, deadline=None)
def test_stable_f_closed_form_recovers_parameters(inputs):
    forward, activity, preference = inputs
    if abs(forward - 0.5) < 0.05:
        forward = 0.3
    if activity.sum() <= 0:
        activity = activity + 1.0
    normalised = preference / preference.sum()
    matrix = simplified_ic_matrix(forward, activity, normalised)
    est_activity, est_preference = stable_f_closed_form(
        forward, matrix.sum(axis=1), matrix.sum(axis=0)
    )
    np.testing.assert_allclose(est_activity, activity, rtol=1e-6, atol=1e-3)
    np.testing.assert_allclose(est_preference, normalised, rtol=1e-6, atol=1e-6)


@given(ic_inputs(), st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_activity_recovery_from_marginals(inputs, timesteps):
    forward, activity, preference = inputs
    normalised = preference / preference.sum()
    rng = np.random.default_rng(0)
    activity_series = np.maximum(
        rng.random((timesteps, activity.shape[0])) * (activity + 1.0), 1e-3
    )
    values = simplified_ic_series(forward, activity_series, normalised)
    series = TrafficMatrixSeries(values)
    recovered = estimate_activity_from_marginals(
        forward, normalised, series.ingress, series.egress
    )
    np.testing.assert_allclose(recovered, activity_series, rtol=1e-5, atol=1e-3)


# -- metrics -------------------------------------------------------------------


@given(
    arrays(
        dtype=float,
        shape=(3, 4, 4),
        elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    )
)
@settings(max_examples=40, deadline=None)
def test_error_of_exact_estimate_is_zero(values):
    np.testing.assert_allclose(rel_l2_temporal_error(values, values), 0.0)


@given(
    arrays(dtype=float, shape=5, elements=st.floats(min_value=0.01, max_value=100.0)),
    arrays(dtype=float, shape=5, elements=st.floats(min_value=0.01, max_value=100.0)),
)
@settings(max_examples=40, deadline=None)
def test_improvement_antisymmetry_sign(baseline, model):
    """Improvement is positive exactly when the model error is lower."""
    improvement = percent_improvement(baseline, model)
    assert np.all((improvement > 0) == (model < baseline))


# -- IPF ------------------------------------------------------------------------


@given(node_counts, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_ipf_matches_marginals(n, seed):
    rng = np.random.default_rng(seed)
    seed_matrix = rng.random((n, n)) + 0.1
    rows = rng.random(n) * 10 + 1.0
    cols = rng.permutation(rows)
    fitted = iterative_proportional_fitting(seed_matrix, rows, cols, max_iterations=200)
    np.testing.assert_allclose(fitted.sum(axis=1), rows, rtol=1e-4)
    np.testing.assert_allclose(fitted.sum(axis=0), cols, rtol=1e-4)
    assert np.all(fitted >= 0)


# -- routing ---------------------------------------------------------------------


@given(st.integers(min_value=4, max_value=10), st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_routing_matrix_column_properties(n, seed):
    topology = random_topology(n, seed=seed)
    routing = build_routing_matrix(topology)
    matrix = routing.matrix
    # Every entry is a fraction in [0, 1]; diagonal OD pairs route nowhere.
    assert np.all(matrix >= -1e-12) and np.all(matrix <= 1.0 + 1e-12)
    for i, node in enumerate(topology.nodes):
        np.testing.assert_allclose(routing.column(node, node), 0.0)
    # Off-diagonal OD pairs are carried by at least one link.
    for origin in topology.nodes[:3]:
        for destination in topology.nodes[:3]:
            if origin != destination:
                assert routing.column(origin, destination).sum() >= 1.0 - 1e-9


# -- containers -------------------------------------------------------------------


@given(
    arrays(
        dtype=float,
        shape=(4, 4),
        elements=st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    )
)
@settings(max_examples=40, deadline=None)
def test_traffic_matrix_vector_round_trip(values):
    matrix = TrafficMatrix(values)
    rebuilt = TrafficMatrix.from_vector(matrix.to_vector())
    np.testing.assert_allclose(rebuilt.values, matrix.values)
    assert matrix.total == pytest.approx(matrix.ingress.sum())
    assert matrix.total == pytest.approx(matrix.egress.sum())

"""Tests for shortest-path routing and routing-matrix construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.library import abilene_topology, geant_topology
from repro.topology.routing import build_routing_matrix, shortest_paths
from repro.topology.topology import Topology


def make_line() -> Topology:
    """a - b - c with unit weights: the a->c path must use both links."""
    topology = Topology("line", ["a", "b", "c"])
    topology.add_bidirectional_link("a", "b")
    topology.add_bidirectional_link("b", "c")
    return topology


def make_square() -> Topology:
    """A 4-cycle with equal weights: two equal-cost paths between opposite corners."""
    topology = Topology("square", ["a", "b", "c", "d"])
    for pair in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")):
        topology.add_bidirectional_link(*pair)
    return topology


class TestShortestPaths:
    def test_line_path(self):
        paths = shortest_paths(make_line())
        assert paths[("a", "c")] == [["a", "b", "c"]]
        assert paths[("a", "a")] == [["a"]]

    def test_all_paths_mode_finds_both_ecmp_paths(self):
        paths = shortest_paths(make_square(), all_paths=True)
        assert len(paths[("a", "c")]) == 2

    def test_respects_weights(self):
        topology = Topology("w", ["a", "b", "c"])
        topology.add_bidirectional_link("a", "b", weight=10.0)
        topology.add_bidirectional_link("b", "c", weight=10.0)
        topology.add_bidirectional_link("a", "c", weight=50.0)
        paths = shortest_paths(topology)
        assert paths[("a", "c")] == [["a", "b", "c"]]


class TestRoutingMatrix:
    def test_line_matrix_entries(self):
        routing = build_routing_matrix(make_line())
        column = routing.column("a", "c")
        used = {routing.links[r].key for r in np.nonzero(column)[0]}
        assert used == {("a", "b"), ("b", "c")}
        np.testing.assert_allclose(column[np.nonzero(column)], 1.0)

    def test_intra_pop_columns_are_zero(self):
        routing = build_routing_matrix(make_line())
        for node in ("a", "b", "c"):
            np.testing.assert_allclose(routing.column(node, node), 0.0)

    def test_ecmp_splits_traffic(self):
        routing = build_routing_matrix(make_square(), ecmp=True)
        column = routing.column("a", "c")
        nonzero = column[np.nonzero(column)]
        np.testing.assert_allclose(nonzero, 0.5)
        assert nonzero.size == 4  # two 2-hop paths

    def test_no_ecmp_uses_single_path(self):
        routing = build_routing_matrix(make_square(), ecmp=False)
        column = routing.column("a", "c")
        assert np.count_nonzero(column) == 2
        np.testing.assert_allclose(column[np.nonzero(column)], 1.0)

    def test_column_sums_equal_path_hop_counts(self):
        """Each OD column sums to its (expected) path length in hops."""
        topology = make_line()
        routing = build_routing_matrix(topology)
        paths = shortest_paths(topology)
        n = topology.n_nodes
        for (origin, destination), node_paths in paths.items():
            column = routing.column(origin, destination)
            expected = np.mean([len(p) - 1 for p in node_paths])
            assert column.sum() == pytest.approx(expected)

    def test_link_loads_shapes(self):
        routing = build_routing_matrix(make_line())
        single = routing.link_loads(np.ones(9))
        batch = routing.link_loads(np.ones((5, 9)))
        stacked = routing.link_loads(np.ones((3, 5, 9)))
        assert single.shape == (routing.n_links,)
        assert batch.shape == (5, routing.n_links)
        assert stacked.shape == (3, 5, routing.n_links)

    def test_link_loads_rejects_bad_trailing_dimension(self):
        routing = build_routing_matrix(make_line())
        with pytest.raises(Exception):
            routing.link_loads(np.ones(8))

    def test_link_loads_sparse_matches_dense(self):
        routing = build_routing_matrix(make_square())
        rng = np.random.default_rng(2)
        for shape in ((16,), (7, 16), (2, 3, 16)):
            traffic = rng.random(shape)
            dense = routing.link_loads(traffic)
            via_sparse = routing.link_loads(traffic, use_sparse=True)
            np.testing.assert_allclose(via_sparse, dense, rtol=1e-12, atol=0)
            assert via_sparse.shape == dense.shape

    def test_rank_is_deficient(self):
        """The estimation problem must be under-constrained (rank < n^2)."""
        routing = build_routing_matrix(geant_topology())
        assert routing.rank() < routing.n_nodes**2

    def test_sparse_and_dense_representations_agree(self):
        routing = build_routing_matrix(geant_topology())
        assert routing.sparse.shape == routing.matrix.shape
        np.testing.assert_array_equal(routing.sparse.toarray(), routing.matrix)
        # Far fewer non-zeros than entries: the sparse form is the point.
        assert routing.sparse.nnz < 0.25 * routing.matrix.size

    def test_dense_constructed_matrix_gains_sparse_view(self):
        from repro.topology.routing import RoutingMatrix

        reference = build_routing_matrix(make_line())
        dense = RoutingMatrix(
            matrix=reference.matrix.copy(), links=reference.links, nodes=reference.nodes
        )
        np.testing.assert_array_equal(dense.sparse.toarray(), reference.matrix)
        np.testing.assert_array_equal(dense.column("a", "c"), reference.column("a", "c"))

    def test_column_uses_cached_node_index(self):
        routing = build_routing_matrix(make_line())
        assert routing.node_index("b") == 1
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            routing.column("a", "nope")

    def test_column_from_sparse_matches_dense_column(self):
        routing = build_routing_matrix(make_square())
        sparse_column = routing.column("a", "c")  # dense cache not materialised yet
        dense_column = routing.matrix[:, routing.node_index("a") * 4 + routing.node_index("c")]
        np.testing.assert_array_equal(sparse_column, dense_column)

    def test_shape_mismatch_rejected(self):
        from repro.errors import ShapeError
        from repro.topology.routing import RoutingMatrix

        with pytest.raises(ShapeError):
            RoutingMatrix(matrix=np.zeros((2, 5)), links=("x", "y"), nodes=("a", "b"))

    def test_traffic_conservation_on_abilene(self):
        """Total bytes on first-hop links of an OD pair equal the OD volume."""
        topology = abilene_topology()
        routing = build_routing_matrix(topology)
        n = topology.n_nodes
        rng = np.random.default_rng(0)
        tm = rng.random((n, n))
        np.fill_diagonal(tm, 0.0)
        loads = routing.link_loads(tm.reshape(-1))
        # Sum of loads on links leaving node i equals traffic originated at i
        # plus transit traffic through i; at minimum it is >= the origin total.
        for i, node in enumerate(topology.nodes):
            outgoing = [r for r, link in enumerate(routing.links) if link.source == node]
            assert loads[outgoing].sum() >= tm[i].sum() - 1e-9

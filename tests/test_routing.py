"""Tests for shortest-path routing and routing-matrix construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.library import abilene_topology, geant_topology
from repro.topology.routing import build_routing_matrix, shortest_paths
from repro.topology.topology import Topology


def make_line() -> Topology:
    """a - b - c with unit weights: the a->c path must use both links."""
    topology = Topology("line", ["a", "b", "c"])
    topology.add_bidirectional_link("a", "b")
    topology.add_bidirectional_link("b", "c")
    return topology


def make_square() -> Topology:
    """A 4-cycle with equal weights: two equal-cost paths between opposite corners."""
    topology = Topology("square", ["a", "b", "c", "d"])
    for pair in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")):
        topology.add_bidirectional_link(*pair)
    return topology


class TestShortestPaths:
    def test_line_path(self):
        paths = shortest_paths(make_line())
        assert paths[("a", "c")] == [["a", "b", "c"]]
        assert paths[("a", "a")] == [["a"]]

    def test_all_paths_mode_finds_both_ecmp_paths(self):
        paths = shortest_paths(make_square(), all_paths=True)
        assert len(paths[("a", "c")]) == 2

    def test_respects_weights(self):
        topology = Topology("w", ["a", "b", "c"])
        topology.add_bidirectional_link("a", "b", weight=10.0)
        topology.add_bidirectional_link("b", "c", weight=10.0)
        topology.add_bidirectional_link("a", "c", weight=50.0)
        paths = shortest_paths(topology)
        assert paths[("a", "c")] == [["a", "b", "c"]]


class TestRoutingMatrix:
    def test_line_matrix_entries(self):
        routing = build_routing_matrix(make_line())
        column = routing.column("a", "c")
        used = {routing.links[r].key for r in np.nonzero(column)[0]}
        assert used == {("a", "b"), ("b", "c")}
        np.testing.assert_allclose(column[np.nonzero(column)], 1.0)

    def test_intra_pop_columns_are_zero(self):
        routing = build_routing_matrix(make_line())
        for node in ("a", "b", "c"):
            np.testing.assert_allclose(routing.column(node, node), 0.0)

    def test_ecmp_splits_traffic(self):
        routing = build_routing_matrix(make_square(), ecmp=True)
        column = routing.column("a", "c")
        nonzero = column[np.nonzero(column)]
        np.testing.assert_allclose(nonzero, 0.5)
        assert nonzero.size == 4  # two 2-hop paths

    def test_no_ecmp_uses_single_path(self):
        routing = build_routing_matrix(make_square(), ecmp=False)
        column = routing.column("a", "c")
        assert np.count_nonzero(column) == 2
        np.testing.assert_allclose(column[np.nonzero(column)], 1.0)

    def test_column_sums_equal_path_hop_counts(self):
        """Each OD column sums to its (expected) path length in hops."""
        topology = make_line()
        routing = build_routing_matrix(topology)
        paths = shortest_paths(topology)
        n = topology.n_nodes
        for (origin, destination), node_paths in paths.items():
            column = routing.column(origin, destination)
            expected = np.mean([len(p) - 1 for p in node_paths])
            assert column.sum() == pytest.approx(expected)

    def test_link_loads_shapes(self):
        routing = build_routing_matrix(make_line())
        single = routing.link_loads(np.ones(9))
        batch = routing.link_loads(np.ones((5, 9)))
        assert single.shape == (routing.n_links,)
        assert batch.shape == (5, routing.n_links)

    def test_rank_is_deficient(self):
        """The estimation problem must be under-constrained (rank < n^2)."""
        routing = build_routing_matrix(geant_topology())
        assert routing.rank() < routing.n_nodes**2

    def test_traffic_conservation_on_abilene(self):
        """Total bytes on first-hop links of an OD pair equal the OD volume."""
        topology = abilene_topology()
        routing = build_routing_matrix(topology)
        n = topology.n_nodes
        rng = np.random.default_rng(0)
        tm = rng.random((n, n))
        np.fill_diagonal(tm, 0.0)
        loads = routing.link_loads(tm.reshape(-1))
        # Sum of loads on links leaving node i equals traffic originated at i
        # plus transit traffic through i; at minimum it is >= the origin total.
        for i, node in enumerate(topology.nodes):
            outgoing = [r for r, link in enumerate(routing.links) if link.source == node]
            assert loads[outgoing].sum() >= tm[i].sum() - 1e-9

"""Tests for the benchmark harness, the BENCH JSON format and `repro bench`."""

from __future__ import annotations

import json

import pytest

from repro.benchmarking import (
    BenchmarkRecord,
    bench_ic_series_kernel,
    bench_ipf_series,
    bench_routing_matrix,
    bench_tomogravity_batch,
    current_revision,
    environment_info,
    format_records,
    run_benchmarks,
    write_bench_json,
)
from repro import benchmarking
from repro.cli import main


@pytest.fixture
def small_sweep_grid(monkeypatch):
    """Point the quick set's sweep benches at seconds-scale workloads."""

    original = benchmarking.bench_sweep_grid
    original_executor = benchmarking.bench_sweep_executor

    def tiny(**_ignored):
        return original(
            priors=("gravity", "stable_f"),
            datasets=("geant",),
            bins_per_week=48,
            max_bins=4,
            jobs=2,
            repeat=1,
        )

    def tiny_executor(**_ignored):
        return original_executor(
            n_targets=2, bins_per_week=48, max_bins=4, pool_jobs=2, repeat=1
        )

    monkeypatch.setattr(benchmarking, "bench_sweep_grid", tiny)
    monkeypatch.setattr(benchmarking, "bench_sweep_executor", tiny_executor)
    return tiny


class TestRecordsAndWriter:
    def test_record_roundtrip(self):
        record = BenchmarkRecord("x", 0.5, {"speedup": 2.0})
        assert record.to_dict() == {
            "name": "x",
            "wall_seconds": 0.5,
            "extra_info": {"speedup": 2.0},
        }

    def test_write_bench_json_schema(self, tmp_path):
        records = [BenchmarkRecord("a", 0.1, {"k": 1}), BenchmarkRecord("b", 0.2)]
        path = write_bench_json(records, directory=tmp_path, revision="deadbee")
        assert path.name == "BENCH_deadbee.json"
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-bench-v1"
        assert payload["revision"] == "deadbee"
        assert {"python", "numpy", "platform"} <= set(payload["environment"])
        assert [bench["name"] for bench in payload["benchmarks"]] == ["a", "b"]
        assert payload["benchmarks"][0]["extra_info"] == {"k": 1}

    def test_write_bench_json_explicit_path(self, tmp_path):
        target = tmp_path / "sub" / "custom.json"
        path = write_bench_json([BenchmarkRecord("a", 0.1)], path=target, revision="r")
        assert path == target and target.exists()

    def test_current_revision_is_nonempty(self):
        assert current_revision()

    def test_environment_info_keys(self):
        info = environment_info()
        assert set(info) == {"python", "numpy", "platform", "backends"}
        assert "numpy" in info["backends"]
        assert info["backends"]["numpy"]["device"] == "cpu"

    def test_format_records_tabulates(self):
        table = format_records([BenchmarkRecord("kernel", 0.25, {"speedup": 3.0})])
        assert "kernel" in table and "0.25" in table and "speedup=3" in table


class TestMicroBenchmarks:
    def test_ic_series_kernel_headline(self):
        """The acceptance headline: batched kernel >= 5x the per-bin loop."""
        record = bench_ic_series_kernel(n=50, timesteps=288, repeat=3)
        assert record.extra_info["matches_loop_bitwise"] is True
        assert record.extra_info["speedup_vs_loop"] >= 5.0
        assert record.wall_seconds > 0

    def test_ipf_series_benchmark_matches(self):
        record = bench_ipf_series(bins=8, repeat=1)
        assert record.extra_info["matches_loop_bitwise"] is True

    def test_tomogravity_benchmark_matches(self):
        record = bench_tomogravity_batch(bins=4, repeat=1)
        assert record.extra_info["matches_loop_bitwise"] is True

    def test_routing_benchmark_reports_sparsity(self):
        record = bench_routing_matrix(repeat=1)
        assert 0 < record.extra_info["nnz_density"] < 1

    def test_run_benchmarks_quick_set(self, small_sweep_grid):
        records = run_benchmarks(quick=True, repeat=1)
        names = [record.name for record in records]
        assert names == [
            "ic_series_kernel",
            "ic_series_backend",
            "routing_matrix",
            "ipf_series",
            "tomogravity_batch",
            "streaming_synthesis",
            "ingest_throughput",
            "sweep_grid",
            "sweep_executor",
            "report_marts",
            "obs_overhead",
            "serve_steady_state",
        ]

    def test_bench_sweep_grid_record(self, small_sweep_grid):
        record = small_sweep_grid()
        assert record.name == "sweep_grid"
        extra = record.extra_info
        assert extra["matches_serial_bitwise"] is True
        assert extra["cells"] == 2
        assert extra["serial_stream_seconds"] > 0

    def test_bench_sweep_executor_record(self):
        record = benchmarking.bench_sweep_executor(
            n_targets=2, bins_per_week=48, max_bins=4, pool_jobs=2, repeat=1
        )
        assert record.name == "sweep_executor"
        extra = record.extra_info
        assert extra["matches_serial_bitwise"] is True
        assert extra["cells"] == 2
        assert extra["memoisation_speedup"] > 0
        assert extra["pool_unmemoised_seconds"] > 0
        assert extra["speedup_vs_serial"] > 0

    def test_bench_obs_overhead_record(self):
        record = benchmarking.bench_obs_overhead(bins=48, chunk_bins=16, repeat=1)
        assert record.name == "obs_overhead"
        extra = record.extra_info
        assert extra["matches_seed_bitwise"] is True
        assert extra["seed_seconds"] > 0
        assert extra["budget_pct"] == 2.0


class TestBenchCLI:
    def test_bench_quick_writes_file(self, tmp_path, capsys, small_sweep_grid):
        exit_code = main(
            ["bench", "--quick", "--repeat", "1", "--output", str(tmp_path), "--rev", "test"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "ic_series_kernel" in out
        payload = json.loads((tmp_path / "BENCH_test.json").read_text())
        assert len(payload["benchmarks"]) == 12
        by_name = {bench["name"]: bench for bench in payload["benchmarks"]}
        assert "numpy" in by_name["ic_series_backend"]["extra_info"]["backends"]
        assert by_name["sweep_grid"]["extra_info"]["matches_serial_bitwise"] is True
        assert payload["obs"]["overhead_pct"] is not None

    def test_bench_explicit_json_path(self, tmp_path, small_sweep_grid):
        target = tmp_path / "snapshot.json"
        exit_code = main(
            ["bench", "--quick", "--repeat", "1", "--output", str(target), "--rev", "x"]
        )
        assert exit_code == 0
        assert target.exists()


class TestBenchUtilsSharedFormat:
    def test_emit_records_into_shared_format(self, tmp_path, monkeypatch):
        import importlib.util
        import pathlib
        import sys

        bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        spec = importlib.util.spec_from_file_location(
            "_bench_utils_under_test", bench_dir / "_bench_utils.py"
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)

        class FakeStatsInner:
            mean = 0.125

        class FakeStats:
            stats = FakeStatsInner()

        class FakeBenchmark:
            name = "test_fake_benchmark"
            stats = FakeStats()

            def __init__(self):
                self.extra_info = {}

        class FakeResult:
            @staticmethod
            def format_table():
                return "quantity value"

        benchmark = FakeBenchmark()
        module.emit(benchmark, FakeResult(), dataset="geant", score=1.5)
        assert benchmark.extra_info == {"dataset": "geant", "score": 1.5}
        assert module._collected[-1].name == "test_fake_benchmark"
        assert module._collected[-1].wall_seconds == pytest.approx(0.125)
        assert module._collected[-1].extra_info == {"dataset": "geant", "score": 1.5}

        target = tmp_path / "BENCH_adhoc.json"
        monkeypatch.setenv("REPRO_BENCH_JSON", str(target))
        module._flush_collected()
        payload = json.loads(target.read_text())
        assert payload["benchmarks"][-1]["name"] == "test_fake_benchmark"


class TestBenchCompare:
    def _write(self, tmp_path, name, times, revision):
        records = [
            benchmarking.BenchmarkRecord(name=bench, wall_seconds=seconds)
            for bench, seconds in times.items()
        ]
        return benchmarking.write_bench_json(
            records, path=tmp_path / name, revision=revision
        )

    def test_no_regression_within_threshold(self, tmp_path):
        old = self._write(tmp_path, "a.json", {"k1": 1.0, "k2": 0.5}, "aaa")
        new = self._write(tmp_path, "b.json", {"k1": 1.1, "k2": 0.45}, "bbb")
        comparison = benchmarking.compare_bench_files(old, new, threshold=0.25)
        assert not comparison.has_regressions
        assert comparison.old_revision == "aaa"
        assert comparison.new_revision == "bbb"
        table = comparison.format_table()
        assert "no regressions" in table
        assert "aaa -> bbb" in table

    def test_regression_beyond_threshold_is_flagged(self, tmp_path):
        old = self._write(tmp_path, "a.json", {"k1": 1.0, "k2": 0.5}, "aaa")
        new = self._write(tmp_path, "b.json", {"k1": 1.5, "k2": 0.5}, "bbb")
        comparison = benchmarking.compare_bench_files(old, new, threshold=0.25)
        assert comparison.has_regressions
        assert [row[0] for row in comparison.regressions] == ["k1"]
        assert "REGRESSED" in comparison.format_table()

    def test_disjoint_benchmarks_are_reported_not_compared(self, tmp_path):
        old = self._write(tmp_path, "a.json", {"k1": 1.0, "gone": 2.0}, "aaa")
        new = self._write(tmp_path, "b.json", {"k1": 1.0, "fresh": 2.0}, "bbb")
        comparison = benchmarking.compare_bench_files(old, new)
        assert comparison.only_old == ["gone"]
        assert comparison.only_new == ["fresh"]
        assert [row[0] for row in comparison.rows] == ["k1"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="repro-bench-v1"):
            benchmarking.load_bench_json(path)

    def test_cli_compare_exit_codes(self, tmp_path, capsys):
        old = self._write(tmp_path, "a.json", {"k1": 1.0}, "aaa")
        new = self._write(tmp_path, "b.json", {"k1": 1.0}, "bbb")
        slow = self._write(tmp_path, "c.json", {"k1": 2.0}, "ccc")
        assert main(["bench", "--compare", str(old), str(new)]) == 0
        assert main(["bench", "--compare", str(old), str(slow)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert main(["bench", "--compare", str(old), str(tmp_path / "missing.json")]) == 2
        assert main(["bench", "--compare", str(old), str(new), "--threshold", "-1"]) == 2

    def test_streaming_synthesis_benchmark_bounds_memory(self):
        record = benchmarking.bench_streaming_synthesis(bins=96, repeat=1)
        assert record.name == "streaming_synthesis"
        assert record.extra_info["peak_memory_ratio"] > 1.0

    def test_ingest_throughput_benchmark_meets_slo(self):
        record = benchmarking.bench_ingest_throughput(bins=16, repeat=1)
        assert record.name == "ingest_throughput"
        extra = record.extra_info
        assert extra["records"] == extra["bins"] * 22 * 22 * extra["records_per_pair"]
        # The service SLO: the pure-numpy binner sustains >= 100k records/sec.
        assert extra["records_per_sec"] >= 100_000

"""Tests for the live flow-ingestion subsystem behind ``repro serve``.

The contract under test is the one the service advertises:

* the binner implements watermark semantics exactly — out-of-order records
  inside the watermark land in their bins, late records are dropped and
  counted, the published series is gapless and a published matrix is never
  mutated;
* decomposing a ground-truth stream into records and binning the feed
  reconstructs the stream **bit for bit**, which makes the headline
  equivalence provable: a served replay with a pinned prior reproduces the
  batch ``estimate_stream`` numbers through the JSONL sink with **zero**
  difference (budget 1e-12);
* the rolling window spills past its memory budget without changing the
  fitted numbers, re-fits swap the active prior atomically, and a
  checkpointed service resumes into a byte-identical published series.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.ic_model import simplified_ic_series
from repro.core.priors import StableFPrior
from repro.errors import ValidationError
from repro.estimation.linear_system import simulate_link_loads_streaming
from repro.estimation.pipeline import TMEstimator
from repro.ingest import (
    CHECKPOINT_FORMAT,
    ConnectionFlowSource,
    FileReplaySource,
    FlowBinner,
    FlowSource,
    IngestService,
    RecordBatch,
    RollingFitManager,
    RollingWindow,
    SyntheticFlowSource,
    live_chunk_stream,
    read_flow_file,
    write_flow_csv,
    write_flow_jsonl,
)
from repro.streaming import ArrayChunkStream, cache_chunks
from repro.synthesis.datasets import open_dataset_stream
from repro.traces.connections import Connection
from repro.traces.netflow import od_flows_from_connections


# ---------------------------------------------------------------------------
# record batches and flow files
# ---------------------------------------------------------------------------

class TestRecordBatch:
    def test_columns_must_share_shape(self):
        with pytest.raises(ValidationError, match="share one shape"):
            RecordBatch([0.0, 1.0], [0], [1], [5.0, 5.0])

    def test_volumes_must_be_non_negative(self):
        with pytest.raises(ValidationError, match="non-negative"):
            RecordBatch([0.0], [0], [1], [-1.0])

    def test_from_names_resolves_against_node_ordering(self):
        batch = RecordBatch.from_names([0.0, 1.0], ["b", "a"], ["a", "b"], [1.0, 2.0], ["a", "b"])
        assert batch.src.tolist() == [1, 0]
        assert batch.dst.tolist() == [0, 1]

    def test_from_names_rejects_unknown_node(self):
        with pytest.raises(ValidationError, match="unknown node 'z'"):
            RecordBatch.from_names([0.0], ["z"], ["a"], [1.0], ["a", "b"])


class TestFlowFiles:
    ROWS = [(0.0, "a", "b", 10.0), (3.0, "b", "a", 7.5), (9.0, "a", "b", 1.25)]

    @pytest.mark.parametrize("writer,suffix", [(write_flow_csv, ".csv"), (write_flow_jsonl, ".jsonl")])
    def test_round_trip(self, tmp_path, writer, suffix):
        path = tmp_path / f"trace{suffix}"
        assert writer(path, self.ROWS) == 3
        batches = list(read_flow_file(path, ["a", "b"], batch_records=2))
        assert [len(b) for b in batches] == [2, 1]
        merged = np.concatenate([b.volumes for b in batches])
        np.testing.assert_array_equal(merged, [10.0, 7.5, 1.25])

    def test_csv_header_is_checked(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("when,from,to,size\n0,a,b,1\n")
        with pytest.raises(ValidationError, match="expected CSV header"):
            list(read_flow_file(path, ["a", "b"]))

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "trace.parquet"
        path.write_text("")
        with pytest.raises(ValidationError, match="suffix"):
            list(read_flow_file(path, ["a", "b"]))


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------

def _total_matrix(source) -> np.ndarray:
    binner = FlowBinner(source.nodes, bin_seconds=1e9, watermark_bins=0)
    total = np.zeros((source.n_nodes,) * 2)
    for batch in source.batches():
        for _, matrix in binner.push(batch):
            total += matrix
    for _, matrix in binner.flush():
        total += matrix
    return total


class TestConnectionFlowSource:
    def test_totals_match_od_flow_aggregation(self):
        rng = np.random.default_rng(3)
        nodes = ["A", "B", "C"]
        connections = [
            Connection("h", "s", 1, 2, nodes[i], nodes[j], rng.uniform(1, 9), rng.uniform(1, 9),
                       float(k), 1.0)
            for k, (i, j) in enumerate([(0, 1), (1, 2), (2, 0), (0, 2)])
        ]
        source = ConnectionFlowSource(connections, nodes, batch_records=3)
        np.testing.assert_allclose(
            _total_matrix(source), od_flows_from_connections(connections, nodes)
        )

    def test_self_pair_rejected_with_escape_hatch(self):
        connections = [Connection("h", "s", 1, 2, "A", "A", 5.0, 3.0, 0.0, 1.0)]
        with pytest.raises(ValidationError, match="same\\s+node"):
            list(ConnectionFlowSource(connections, ["A", "B"]).batches())
        total = _total_matrix(
            ConnectionFlowSource(connections, ["A", "B"], keep_self_pairs=True)
        )
        assert total[0, 0] == 8.0


class TestSyntheticFlowSource:
    def test_single_record_per_pair_reconstructs_bitwise(self):
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=12, seed=5)
        stream = data.week_stream(0)
        truth = np.stack([b for _, b in stream.chunks()]).reshape(-1, 22, 22)
        source = SyntheticFlowSource(stream)
        binner = FlowBinner(stream.nodes, bin_seconds=stream.bin_seconds)
        got = [m for batch in source.batches() for _, m in binner.push(batch)]
        got += [m for _, m in binner.flush()]
        assert np.array_equal(np.stack(got), truth)

    def test_record_splitting_preserves_bin_totals(self):
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=6, seed=5)
        stream = data.week_stream(0)
        truth = np.concatenate([b for _, b in stream.chunks()])
        source = SyntheticFlowSource(stream, records_per_pair=3)
        binner = FlowBinner(stream.nodes, bin_seconds=stream.bin_seconds)
        got = [m for batch in source.batches() for _, m in binner.push(batch)]
        got += [m for _, m in binner.flush()]
        np.testing.assert_allclose(np.stack(got), truth, rtol=1e-12)

    def test_jitter_must_stay_inside_one_bin(self):
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=6, seed=5)
        stream = data.week_stream(0)
        with pytest.raises(ValidationError, match="below one bin"):
            SyntheticFlowSource(stream, jitter_seconds=stream.bin_seconds)


class TestFileReplaySource:
    def test_replays_written_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_flow_jsonl(path, [(0.0, "a", "b", 4.0), (0.5, "b", "a", 6.0)])
        total = _total_matrix(FileReplaySource(path, ["a", "b"]))
        np.testing.assert_array_equal(total, [[0.0, 4.0], [6.0, 0.0]])

    def test_negative_speedup_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="speedup"):
            FileReplaySource(tmp_path / "t.csv", ["a"], speedup=-1)


# ---------------------------------------------------------------------------
# the binner
# ---------------------------------------------------------------------------

class TestFlowBinner:
    NODES = ("a", "b", "c")

    def _batch(self, rows):
        times, srcs, dsts, vols = zip(*rows)
        return RecordBatch(list(times), list(srcs), list(dsts), list(vols))

    def test_trailing_bin_held_until_flush(self):
        binner = FlowBinner(self.NODES, bin_seconds=10.0, watermark_bins=0)
        closed = binner.push(self._batch([(1.0, 0, 1, 5.0), (12.0, 1, 2, 7.0)]))
        assert [index for index, _ in closed] == [0]
        assert closed[0][1][0, 1] == 5.0
        assert binner.open_bins == 1
        flushed = binner.flush()
        assert [index for index, _ in flushed] == [1]
        assert flushed[0][1][1, 2] == 7.0

    def test_out_of_order_within_watermark_lands_in_its_bin(self):
        binner = FlowBinner(self.NODES, bin_seconds=10.0, watermark_bins=1)
        binner.push(self._batch([(25.0, 0, 1, 1.0)]))  # bin 2 seen first
        closed = binner.push(self._batch([(15.0, 1, 0, 9.0)]))  # bin 1, still open
        assert closed == []
        flushed = {index: m for index, m in binner.flush()}
        assert flushed[1][1, 0] == 9.0
        assert binner.records_dropped_late == 0

    def test_late_records_dropped_and_counted_not_applied(self):
        binner = FlowBinner(self.NODES, bin_seconds=10.0, watermark_bins=0)
        closed = binner.push(self._batch([(5.0, 0, 1, 2.0), (15.0, 0, 1, 3.0)]))
        published = closed[0][1].copy()
        late = binner.push(self._batch([(6.0, 2, 0, 99.0)]))  # bin 0 already closed
        assert late == []
        assert binner.records_dropped_late == 1
        np.testing.assert_array_equal(published, closed[0][1])  # never mutated

    def test_empty_bins_emitted_as_zeros_gapless(self):
        binner = FlowBinner(self.NODES, bin_seconds=10.0, watermark_bins=0)
        closed = binner.push(self._batch([(2.0, 0, 1, 1.0), (45.0, 0, 1, 1.0)]))
        assert [index for index, _ in closed] == [0, 1, 2, 3]
        assert all(m.sum() == 0 for index, m in closed if index in (1, 2, 3))

    def test_start_bin_skips_replayed_records(self):
        binner = FlowBinner(self.NODES, bin_seconds=10.0, start_bin=2, watermark_bins=0)
        closed = binner.push(self._batch([(5.0, 0, 1, 1.0), (25.0, 1, 2, 4.0), (35.0, 0, 2, 2.0)]))
        assert binner.records_skipped == 1
        assert binner.records_dropped_late == 0
        assert [index for index, _ in closed] == [2]
        assert closed[0][1][1, 2] == 4.0

    def test_pre_origin_timestamps_rejected(self):
        binner = FlowBinner(self.NODES, bin_seconds=10.0, origin=100.0)
        with pytest.raises(ValidationError, match="precede the stream origin"):
            binner.push(self._batch([(5.0, 0, 1, 1.0)]))


class TestLiveChunkStream:
    def _feed(self):
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=12, seed=9)
        stream = data.week_stream(0)
        source = SyntheticFlowSource(stream)
        binner = FlowBinner(stream.nodes, bin_seconds=stream.bin_seconds)
        return stream, live_chunk_stream(source, binner, n_bins=12, chunk_bins=5)

    def test_reconstructs_ground_truth_and_is_single_pass(self):
        stream, live = self._feed()
        truth = np.concatenate([b for _, b in stream.chunks()])
        chunks = list(live.chunks())
        assert [t0 for t0, _ in chunks] == [0, 5, 10]
        assert np.array_equal(np.concatenate([b for _, b in chunks]), truth)
        with pytest.raises(ValidationError, match="single-pass"):
            list(live.chunks())

    def test_cache_chunks_makes_it_replayable(self):
        stream, live = self._feed()
        cached = cache_chunks(live, budget_bytes=1 << 30)
        first = np.concatenate([b for _, b in cached.chunks()])
        second = np.concatenate([b for _, b in cached.chunks()])
        assert np.array_equal(first, second)


# ---------------------------------------------------------------------------
# the rolling window and fit manager
# ---------------------------------------------------------------------------

class TestRollingWindow:
    def test_evicts_past_window_bins(self):
        window = RollingWindow(("a", "b"), bin_seconds=60.0, window_bins=4)
        for start in range(0, 8, 2):
            window.append(start, np.full((2, 2, 2), float(start)))
        assert window.n_bins == 4
        assert window.start_bin == 4

    def test_spills_past_budget_and_replays_identically(self, tmp_path):
        rng = np.random.default_rng(11)
        blocks = [rng.random((4, 3, 3)) for _ in range(4)]
        budget = blocks[0].nbytes + 1  # at most one block stays in memory
        window = RollingWindow(
            ("a", "b", "c"), bin_seconds=60.0, window_bins=16,
            budget_bytes=budget, spill_dir=tmp_path,
        )
        for i, block in enumerate(blocks):
            window.append(4 * i, block)
        assert window.spilled_segments >= 2
        assert window.memory_bytes <= budget + blocks[0].nbytes
        replay = np.concatenate([b for _, b in window.as_stream().chunks()])
        assert np.array_equal(replay, np.concatenate(blocks))

    def test_spilled_shards_deleted_on_eviction(self, tmp_path):
        window = RollingWindow(
            ("a", "b"), bin_seconds=60.0, window_bins=4, budget_bytes=0, spill_dir=tmp_path,
        )
        for start in range(0, 12, 2):
            window.append(start, np.ones((2, 2, 2)))
        remaining = list(tmp_path.rglob("*.npz"))
        assert len(remaining) <= 2  # only the live window's shards survive

    def test_blocks_must_be_contiguous(self):
        window = RollingWindow(("a", "b"), bin_seconds=60.0, window_bins=8)
        window.append(0, np.zeros((2, 2, 2)))
        with pytest.raises(ValidationError, match="contiguous"):
            window.append(5, np.zeros((2, 2, 2)))


class TestRollingFitManager:
    def test_stable_f_requires_forward_fraction(self):
        with pytest.raises(ValidationError, match="forward"):
            RollingFitManager(("a", "b"), bin_seconds=60.0, mode="stable_f")

    def test_stable_fp_starts_on_gravity_fallback_then_swaps(self, clean_ic_series):
        series, forward, preference, _ = clean_ic_series
        nodes = tuple(f"n{i}" for i in range(series.values.shape[1]))
        manager = RollingFitManager(
            nodes, bin_seconds=300.0, mode="stable_fp",
            refit_every=10, window_bins=30, min_fit_bins=20,
        )
        assert manager.active.mode == "gravity"
        assert manager.active.version == 0
        swapped_at = []
        for start in range(0, 30, 10):
            if manager.observe(start, series.values[start:start + 10]):
                swapped_at.append(start)
        assert swapped_at  # at least one re-fit landed
        active = manager.active
        assert active.mode == "stable_fp"
        assert active.version >= 1
        assert manager.refits == len(swapped_at)
        # The noiseless stable-fP window recovers the generating parameters.
        assert active.forward_fraction == pytest.approx(forward, rel=1e-3)
        np.testing.assert_allclose(active.preference, preference, rtol=1e-2)
        assert manager.fit_age_bins() is not None

    def test_pinned_prior_without_fitting(self):
        manager = RollingFitManager(("a", "b", "c"), bin_seconds=60.0, mode="stable_fp")
        manager.pin(forward_fraction=0.3, preference=[0.2, 0.3, 0.5])
        active = manager.active
        assert active.mode == "stable_fp" and active.version == 1
        ingress = np.array([[3.0, 2.0, 1.0]])
        values = active.values(ingress, ingress.copy())
        assert values.shape == (1, 3, 3)
        assert np.all(np.isfinite(values))

    def test_prior_values_match_batch_recipes(self):
        manager = RollingFitManager(("a", "b"), bin_seconds=60.0, mode="stable_f",
                                    forward_fraction=0.25)
        ingress = np.array([[4.0, 6.0]])
        egress = np.array([[5.0, 5.0]])
        expected = StableFPrior(0.25).series(ingress, egress).values
        np.testing.assert_array_equal(manager.prior_values(ingress, egress), expected)


# ---------------------------------------------------------------------------
# the service: equivalence, churn liveness, checkpoint/resume, clean stop
# ---------------------------------------------------------------------------

def _read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestServiceEquivalence:
    def test_served_replay_equals_batch_estimate_stream(self, tmp_path):
        """Acceptance: pinned prior + re-fit disabled ≡ batch path (≤ 1e-12)."""
        forward = 0.3
        chunk = 8
        # Same chunk_bins on both sides: matching GEMM shapes make the two
        # paths bit-identical, not merely close.
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=24, seed=17,
                                   chunk_bins=chunk)
        service = IngestService(
            SyntheticFlowSource(data.week_stream(0)),
            data.topology,
            bin_seconds=data.week_stream(0).bin_seconds,
            chunk_bins=chunk,
            prior="stable_f",
            forward_fraction=forward,
            sink=tmp_path / "estimates.jsonl",
        )
        status = service.run()
        assert status.bins_published == 24
        served = np.array([r["estimate"] for r in _read_jsonl(tmp_path / "estimates.jsonl")])

        stream = data.week_stream(0)
        system = simulate_link_loads_streaming(data.topology, stream)
        prior = ArrayChunkStream(
            StableFPrior(forward).series(system.ingress, system.egress).values,
            data.topology.nodes,
            bin_seconds=stream.bin_seconds,
            chunk_bins=chunk,
        )
        batch = TMEstimator().estimate_stream(system, prior, collect_estimate=True)
        diff = np.max(np.abs(served - batch.estimate.values))
        assert diff <= 1e-12  # in practice exactly 0.0 through the JSONL sink

    def test_source_topology_node_mismatch_rejected(self, tmp_path, abilene, geant):
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=6, seed=1)
        with pytest.raises(ValidationError, match="disagree on node ordering"):
            IngestService(SyntheticFlowSource(data.week_stream(0)), abilene)


class _ChurnSource(FlowSource):
    """A feed with out-of-order arrival inside the watermark plus stale records."""

    def __init__(self, stream, *, late_every: int = 4):
        super().__init__(stream.nodes)
        self._inner = SyntheticFlowSource(stream)
        self._bin_seconds = float(stream.bin_seconds)
        self._late_every = late_every
        self.late_injected = 0

    def batches(self):
        previous = None
        for index, batch in enumerate(self._inner.batches()):
            # Swap the emission order of each consecutive pair of batches:
            # bins arrive out of order but stay inside watermark_bins=1.
            if previous is None:
                previous = batch
                continue
            yield batch
            yield previous
            previous = None
            if index % self._late_every == 1 and index > 3:
                # A record far behind the frontier: must be dropped, counted.
                self.late_injected += 1
                yield RecordBatch([0.0], [0], [1], [1e9])
        if previous is not None:
            yield previous


class TestServiceChurn:
    def test_liveness_under_out_of_order_and_late_records(self, tmp_path):
        """Acceptance: churn feed stays gapless, drops counted, re-fit swaps live."""
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=24, seed=23)
        stream = data.full_stream(chunk_bins=1)  # one batch per bin => real churn
        source = _ChurnSource(stream)
        status_path = tmp_path / "status.json"
        service = IngestService(
            source,
            data.topology,
            bin_seconds=stream.bin_seconds,
            chunk_bins=4,
            watermark_bins=1,
            prior="stable_fp",
            refit_every=8,
            window_bins=16,
            sink=tmp_path / "estimates.jsonl",
            status_path=status_path,
        )
        status = service.run()
        records = _read_jsonl(tmp_path / "estimates.jsonl")
        # Gapless publication despite out-of-order arrival and a mid-feed swap.
        assert [r["bin"] for r in records] == list(range(24))
        assert all(np.all(np.isfinite(r["estimate"])) for r in records)
        assert source.late_injected > 0
        assert status.records_dropped_late == source.late_injected
        # The rolling fit landed mid-feed and flipped the published prior mode
        # without interrupting publication.
        modes = [r["prior"] for r in records]
        assert modes[0] == "gravity"
        assert modes[-1] == "stable_fp"
        versions = [r["prior_version"] for r in records]
        assert versions == sorted(versions)  # swaps only move forward
        snapshot = json.loads(status_path.read_text())
        assert snapshot["records_dropped_late"] == source.late_injected
        assert snapshot["prior"]["refits"] >= 1


class TestServiceCheckpointResume:
    def test_stop_resume_matches_uninterrupted_run(self, tmp_path, abilene):
        trace = "examples/sample_flows.csv"
        common = dict(bin_seconds=300.0, chunk_bins=4)

        full_sink = tmp_path / "full.jsonl"
        IngestService(
            FileReplaySource(trace, abilene.nodes), abilene, sink=full_sink, **common
        ).run()

        sink = tmp_path / "resumed.jsonl"
        checkpoint = tmp_path / "checkpoint.json"
        first = IngestService(
            FileReplaySource(trace, abilene.nodes), abilene,
            sink=sink, checkpoint_path=checkpoint, max_bins=8, **common,
        ).run()
        assert first.bins_published == 8
        payload = json.loads(checkpoint.read_text())
        assert payload["format"] == CHECKPOINT_FORMAT
        assert payload["next_bin"] == 8

        second = IngestService(
            FileReplaySource(trace, abilene.nodes), abilene,
            sink=sink, checkpoint_path=checkpoint, **common,
        ).run()
        assert second.records_skipped > 0  # replayed records before bin 8 skipped
        assert _read_jsonl(sink) == _read_jsonl(full_sink)  # byte-identical series

    def test_checkpoint_noise_mismatch_rejected(self, tmp_path, abilene):
        checkpoint = tmp_path / "c.json"
        checkpoint.write_text(json.dumps({
            "format": CHECKPOINT_FORMAT, "next_bin": 4,
            "noise": {"std": 0.05, "seed": 0},
        }))
        with pytest.raises(ValidationError, match="noise std"):
            IngestService(
                FileReplaySource("examples/sample_flows.csv", abilene.nodes),
                abilene, checkpoint_path=checkpoint,
            )


class _StoppingSource(FlowSource):
    """Wraps a source and requests a service stop after ``stop_after`` batches."""

    def __init__(self, inner, stop_after: int):
        super().__init__(inner.nodes)
        self._inner = inner
        self._stop_after = stop_after
        self.service = None

    def batches(self):
        for index, batch in enumerate(self._inner.batches()):
            yield batch
            if index + 1 == self._stop_after:
                self.service.request_stop()


class TestServiceCleanStop:
    def test_request_stop_publishes_closed_bins_and_checkpoints(self, tmp_path, abilene):
        source = _StoppingSource(
            FileReplaySource("examples/sample_flows.csv", abilene.nodes, batch_records=220),
            stop_after=6,
        )
        checkpoint = tmp_path / "checkpoint.json"
        service = IngestService(
            source, abilene, bin_seconds=300.0, chunk_bins=2,
            sink=tmp_path / "out.jsonl", checkpoint_path=checkpoint,
            status_path=tmp_path / "status.json",
        )
        source.service = service
        status = service.run()
        assert status.stopped_by_signal
        assert 0 < status.bins_published < 24
        records = _read_jsonl(tmp_path / "out.jsonl")
        assert [r["bin"] for r in records] == list(range(status.bins_published))
        payload = json.loads(checkpoint.read_text())
        assert payload["next_bin"] == status.bins_published
        snapshot = json.loads((tmp_path / "status.json").read_text())
        assert snapshot["stopped_by_signal"] is True


class TestBackPressureMetrics:
    def test_fully_drained_run_reports_zero_lag_and_latency_quantiles(self, tmp_path):
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=24, seed=11)
        status_path = tmp_path / "status.json"
        service = IngestService(
            SyntheticFlowSource(data.week_stream(0)),
            data.topology,
            bin_seconds=data.week_stream(0).bin_seconds,
            chunk_bins=4,
            sink=tmp_path / "estimates.jsonl",
            status_path=status_path,
        )
        status = service.run()
        assert status.bins_published == 24
        # Everything the watermark released was published: no lag, no queue.
        assert status.bins_behind_watermark == 0
        assert status.queue_depth == 0
        snapshot = json.loads(status_path.read_text())
        assert snapshot["backpressure"] == {
            "queue_depth": 0,
            "bins_behind_watermark": 0,
            "feed_lag_seconds": 0.0,
        }
        latency = snapshot["stage_latency_seconds"]
        # Every pipeline stage that ran reports an ordered quantile pair.
        for stage in ("bin", "measure", "prior", "estimate", "publish"):
            assert latency[stage]["samples"] >= 1
            assert 0.0 <= latency[stage]["p50"] <= latency[stage]["p99"]

    def test_budget_stop_reports_queue_depth_and_watermark_lag(self, tmp_path):
        # A 4-bin publication budget halts the service while the binner has
        # already closed more bins than it may publish; the remainder stays
        # queued behind the watermark, which is what the gauges must show.
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=24, seed=11)
        stream = data.week_stream(0)
        service = IngestService(
            SyntheticFlowSource(stream),
            data.topology,
            bin_seconds=stream.bin_seconds,
            chunk_bins=4,
            max_bins=4,
            sink=tmp_path / "estimates.jsonl",
            status_path=tmp_path / "status.json",
        )
        status = service.run()
        assert status.bins_published == 4
        assert status.queue_depth > 0
        assert status.bins_behind_watermark > 0
        snapshot = json.loads((tmp_path / "status.json").read_text())
        assert snapshot["backpressure"]["queue_depth"] == status.queue_depth
        assert (
            snapshot["backpressure"]["bins_behind_watermark"]
            == status.bins_behind_watermark
        )
        assert snapshot["backpressure"]["feed_lag_seconds"] == pytest.approx(
            status.bins_behind_watermark * stream.bin_seconds, rel=1e-3
        )

"""Tests for synthetic TM generation: preferences, activity, generators, datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ic_model import general_ic_matrix
from repro.errors import ValidationError
from repro.synthesis.activity import ActivityModel, DiurnalProfile
from repro.synthesis.datasets import make_geant_like_dataset, make_totem_like_dataset
from repro.synthesis.generator import GravityTMGenerator, ICTMGenerator, SyntheticTMConfig
from repro.synthesis.preference import exponential_preferences, lognormal_preferences


class TestPreferenceGenerators:
    def test_lognormal_normalised(self):
        preference = lognormal_preferences(22, seed=0)
        assert preference.shape == (22,)
        assert preference.sum() == pytest.approx(1.0)
        assert np.all(preference > 0)

    def test_lognormal_seeded(self):
        np.testing.assert_allclose(lognormal_preferences(10, seed=3), lognormal_preferences(10, seed=3))

    def test_lognormal_is_long_tailed(self):
        preference = lognormal_preferences(200, seed=1)
        assert preference.max() / np.median(preference) > 5.0

    def test_exponential_normalised(self):
        preference = exponential_preferences(15, seed=2)
        assert preference.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            lognormal_preferences(0)
        with pytest.raises(ValidationError):
            lognormal_preferences(5, sigma=-1.0)
        with pytest.raises(ValidationError):
            exponential_preferences(5, scale=0.0)


class TestDiurnalProfile:
    def test_waveform_positive(self):
        profile = DiurnalProfile()
        times = np.arange(0, 7 * 86400, 300)
        waveform = profile.waveform(times)
        assert np.all(waveform > 0)

    def test_weekend_damping(self):
        profile = DiurnalProfile(weekend_factor=0.5)
        monday_noon = 12 * 3600.0
        saturday_noon = 5 * 86400 + 12 * 3600.0
        weekday = profile.waveform(np.array([monday_noon]))[0]
        weekend = profile.waveform(np.array([saturday_noon]))[0]
        assert weekend == pytest.approx(0.5 * weekday)

    def test_peak_hour(self):
        profile = DiurnalProfile(peak_hour=15.0, harmonic_amplitude=0.0)
        hours = np.arange(24)
        waveform = profile.waveform(hours * 3600.0)
        assert hours[np.argmax(waveform)] == 15

    def test_validation(self):
        with pytest.raises(ValidationError):
            DiurnalProfile(day_amplitude=2.0)
        with pytest.raises(ValidationError):
            DiurnalProfile(peak_hour=25.0)


class TestActivityModel:
    def test_shape_and_positivity(self):
        model = ActivityModel(10, seed=0)
        activity = model.generate(100, bin_seconds=300.0)
        assert activity.shape == (100, 10)
        assert np.all(activity > 0)

    def test_daily_periodicity_detectable(self):
        from repro.characterization.activity_analysis import dominant_period

        model = ActivityModel(3, noise_sigma=0.02, seed=1)
        bins_per_day = 288
        activity = model.generate(3 * bins_per_day, bin_seconds=300.0)
        period = dominant_period(activity[:, 0], bin_seconds=300.0)
        assert period == pytest.approx(86400.0, rel=0.1)

    def test_heterogeneity_spreads_levels(self):
        model = ActivityModel(50, heterogeneity_sigma=1.5, seed=2)
        levels = model.base_levels
        assert levels.max() / levels.min() > 10.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            ActivityModel(0)
        with pytest.raises(ValidationError):
            ActivityModel(3, mean_level=-1.0)
        with pytest.raises(ValidationError):
            ActivityModel(3).generate(0)


class TestICTMGenerator:
    def test_noiseless_generation_matches_ground_truth_model(self):
        config = SyntheticTMConfig(noise_sigma=0.0, f_jitter_sigma=0.0, f_responder_sigma=0.0, spatial_bias_sigma=0.0)
        generator = ICTMGenerator(["a", "b", "c", "d"], config, seed=0)
        series, truth = generator.generate(10)
        for t in range(10):
            expected = general_ic_matrix(
                truth.forward_fraction_matrix, truth.activity[t], truth.preference
            )
            np.testing.assert_allclose(series.values[t], expected, rtol=1e-9)

    def test_ground_truth_shapes(self):
        generator = ICTMGenerator([f"n{i}" for i in range(6)], seed=1)
        series, truth = generator.generate(12)
        assert truth.preference.shape == (6,)
        assert truth.activity.shape == (12, 6)
        assert truth.forward_fraction_matrix.shape == (6, 6)
        assert truth.spatial_bias.shape == (6, 6)

    def test_seeded_determinism(self):
        a = ICTMGenerator(["x", "y", "z"], seed=5).generate(5)[0]
        b = ICTMGenerator(["x", "y", "z"], seed=5).generate(5)[0]
        np.testing.assert_allclose(a.values, b.values)

    def test_requires_two_nodes(self):
        with pytest.raises(ValidationError):
            ICTMGenerator(["only"])

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            SyntheticTMConfig(forward_fraction=1.5)
        with pytest.raises(ValidationError):
            SyntheticTMConfig(noise_sigma=-0.1)
        with pytest.raises(ValidationError):
            SyntheticTMConfig(mean_activity=0.0)


class TestGravityTMGenerator:
    def test_generated_traffic_is_gravity_consistent(self):
        from repro.core.gravity import gravity_series
        from repro.core.metrics import mean_relative_error

        generator = GravityTMGenerator(["a", "b", "c", "d"], noise_sigma=0.0, seed=0)
        series = generator.generate(10)
        assert mean_relative_error(series, gravity_series(series)) < 1e-9

    def test_validation(self):
        with pytest.raises(ValidationError):
            GravityTMGenerator(["a"])
        with pytest.raises(ValidationError):
            GravityTMGenerator(["a", "b"], mean_load=0.0)


class TestDatasets:
    def test_geant_dimensions(self):
        dataset = make_geant_like_dataset(n_weeks=2, bins_per_week=24, seed=0)
        assert dataset.n_weeks == 2
        assert dataset.topology.n_nodes == 22
        assert dataset.week(0).n_timesteps == 24
        assert dataset.week(0).nodes == dataset.topology.nodes
        assert dataset.bin_seconds == 300.0

    def test_totem_dimensions(self):
        dataset = make_totem_like_dataset(n_weeks=2, bins_per_week=24, seed=0)
        assert dataset.topology.n_nodes == 23
        assert dataset.week(0).bin_seconds == 900.0

    def test_weeks_share_spatial_parameters(self):
        dataset = make_geant_like_dataset(n_weeks=3, bins_per_week=12, seed=1)
        first = dataset.ground_truths[0]
        for truth in dataset.ground_truths[1:]:
            np.testing.assert_allclose(truth.preference, first.preference)
            assert truth.forward_fraction == first.forward_fraction

    def test_weeks_have_distinct_traffic(self):
        dataset = make_geant_like_dataset(n_weeks=2, bins_per_week=12, seed=2)
        assert not np.allclose(dataset.week(0).values, dataset.week(1).values)

    def test_full_series_concatenates_weeks(self):
        dataset = make_geant_like_dataset(n_weeks=2, bins_per_week=12, seed=3)
        assert dataset.full_series().n_timesteps == 24

    def test_full_scale_dimensions(self):
        dataset = make_geant_like_dataset(n_weeks=1, full_scale=True, seed=4)
        assert dataset.week(0).n_timesteps == 2016

    def test_validation(self):
        with pytest.raises(ValidationError):
            make_geant_like_dataset(n_weeks=0, bins_per_week=10)
        with pytest.raises(ValidationError):
            make_geant_like_dataset(n_weeks=1, bins_per_week=1)

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_experiment_choices_cover_registry(self):
        parser = build_parser()
        action = next(a for a in parser._actions if a.dest == "experiment")
        assert set(action.choices) == set(EXPERIMENTS) | {"all"}

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.dataset is None
        assert not args.full_scale
        assert args.bins_per_week is None

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_runs_fig2(self, capsys):
        assert main(["fig2"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        assert "P[E=A]" in output

    def test_runs_fig3_with_dataset_and_bins(self, capsys):
        assert main(["fig3", "--dataset", "geant", "--bins-per-week", "24"]) == 0
        output = capsys.readouterr().out
        assert "mean improvement %" in output

    def test_runs_fig10(self, capsys):
        assert main(["fig10"]) == 0
        assert "asymmetry level" in capsys.readouterr().out

"""Tests for the subcommand command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS
from repro.registry import DATASETS, PRIORS

SMALL = ["--bins-per-week", "36", "--max-bins", "6"]


class TestParser:
    def test_run_experiment_choices_cover_registry(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig2"])
        assert args.experiment == "fig2"
        for name in list(EXPERIMENTS) + ["all"]:
            assert parser.parse_args(["run", name]).experiment == name

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig2"])
        assert args.dataset is None
        assert not args.full_scale
        assert args.bins_per_week is None

    def test_rejects_unknown_experiment_with_exit_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["run", "fig99"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_rejects_unknown_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["frobnicate"])
        assert excinfo.value.code == 2

    def test_estimate_requires_prior_and_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--prior", "gravity"])


class TestRun:
    def test_runs_fig2(self, capsys):
        assert main(["run", "fig2"]) == 0
        output = capsys.readouterr().out
        assert "fig2" in output
        assert "P[E=A]" in output

    def test_runs_fig3_with_dataset_and_bins(self, capsys):
        assert main(["run", "fig3", "--dataset", "geant", "--bins-per-week", "24"]) == 0
        assert "mean improvement %" in capsys.readouterr().out

    def test_runs_fig10(self, capsys):
        assert main(["run", "fig10"]) == 0
        assert "asymmetry level" in capsys.readouterr().out

    def test_legacy_positional_form_still_works(self, capsys):
        assert main(["fig2"]) == 0
        assert "P[E=A]" in capsys.readouterr().out

    def test_legacy_form_accepts_flags_before_experiment(self, capsys):
        assert main(["--bins-per-week", "24", "fig3"]) == 0
        assert "mean improvement %" in capsys.readouterr().out

    def test_newly_registered_experiment_is_runnable(self, capsys):
        from repro.registry import EXPERIMENTS_REGISTRY

        class _Result:
            @staticmethod
            def format_table():
                return "custom-table"

        EXPERIMENTS_REGISTRY.register(
            "figtest", lambda: _Result(), description="test", metadata={"accepts": ()}
        )
        try:
            assert main(["run", "figtest"]) == 0
            assert "custom-table" in capsys.readouterr().out
        finally:
            EXPERIMENTS_REGISTRY.unregister("figtest")

    def test_unknown_dataset_exits_2_naming_choices(self, capsys):
        assert main(["run", "fig3", "--dataset", "nonesuch"]) == 2
        err = capsys.readouterr().err
        assert "nonesuch" in err
        for name in DATASETS.names():
            assert name in err


class TestEstimate:
    def test_estimate_smoke(self, capsys):
        code = main(["estimate", "--prior", "stable_f", "--dataset", "geant", *SMALL])
        assert code == 0
        output = capsys.readouterr().out
        assert "mean improvement %" in output
        assert "stable-f" in output

    def test_unknown_prior_exits_2_naming_choices(self, capsys):
        assert main(["estimate", "--prior", "bogus", "--dataset", "geant"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        for name in PRIORS.names():
            assert name in err

    def test_unknown_dataset_exits_2(self, capsys):
        assert main(["estimate", "--prior", "gravity", "--dataset", "bogus"]) == 2
        assert "registered datasets" in capsys.readouterr().err

    def test_incompatible_weeks_exit_2(self, capsys):
        code = main([
            "estimate", "--prior", "stable_fp", "--dataset", "geant",
            "--target-week", "0", *SMALL,
        ])
        assert code == 2
        assert "target_week" in capsys.readouterr().err

    def test_no_baseline_skips_comparison(self, capsys):
        code = main([
            "estimate", "--prior", "gravity", "--dataset", "geant",
            "--no-baseline", *SMALL,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "mean estimation error" in output
        assert "mean improvement %" not in output


class TestSweep:
    def test_sweep_smoke(self, capsys):
        code = main([
            "sweep", "--priors", "stable_f", "gravity",
            "--datasets", "geant", "totem", *SMALL,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "geant" in output
        assert "totem" in output
        assert "stable_f" in output
        assert "4/4 cells ok" in output

    def test_sweep_unknown_prior_exits_2(self, capsys):
        code = main(["sweep", "--priors", "bogus", "--datasets", "geant", *SMALL])
        assert code == 2
        assert "registered priors" in capsys.readouterr().err

    def test_sweep_parallel_jobs_matches_serial(self, capsys):
        args = ["sweep", "--priors", "stable_f", "gravity", "--datasets", "geant", *SMALL]
        assert main(args) == 0
        serial_output = capsys.readouterr().out
        assert main([*args, "--jobs", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert parallel_output == serial_output

    def test_sweep_help_documents_jobs_semantics(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--help"])
        output = capsys.readouterr().out
        assert "--jobs" in output
        assert "deterministic" in output

    def test_sweep_negative_jobs_exits_2(self, capsys):
        code = main(["sweep", "--priors", "stable_f", "--datasets", "geant",
                     "--jobs", "-3", *SMALL])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err


class TestList:
    def test_list_priors_names_all_registered(self, capsys):
        assert main(["list", "priors"]) == 0
        output = capsys.readouterr().out
        for name in ("gravity", "measured", "stable_f", "stable_fp"):
            assert name in output

    def test_list_everything(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for kind in ("models:", "priors:", "estimators:", "datasets:", "topologies:", "experiments:"):
            assert kind in output

    def test_list_rejects_unknown_kind(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["list", "widgets"])
        assert excinfo.value.code == 2

    def test_list_shows_prior_metadata(self, capsys):
        assert main(["list", "priors"]) == 0
        output = capsys.readouterr().out
        assert "week_mode=gap" in output
        assert "side_information=f, P" in output

    def test_list_mentions_parallel_sweep_discovery(self, capsys):
        assert main(["list", "priors"]) == 0
        assert "--jobs" in capsys.readouterr().out

    def test_list_datasets_marks_streamable(self, capsys):
        assert main(["list", "datasets"]) == 0
        output = capsys.readouterr().out
        assert "[streamable]" in output
        streamable = [line for line in output.splitlines() if "[streamable]" in line]
        assert any("geant" in line for line in streamable)

    def test_bench_subcommand_registered(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--help"])
        output = capsys.readouterr().out
        assert "--quick" in output
        assert "BENCH_" in output


class TestStreaming:
    """The --stream/--chunk-bins knobs on run, estimate and sweep."""

    def test_estimate_stream_reports_chunking_and_rss(self, capsys):
        code = main(
            ["estimate", "--prior", "stable_f", "--dataset", "geant",
             "--stream", "--chunk-bins", "4", *SMALL]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streamed chunk bins" in out
        assert "4" in out
        assert "peak RSS" in out

    def test_estimate_stream_matches_in_memory_numbers(self, capsys):
        assert main(["estimate", "--prior", "stable_f", "--dataset", "geant", *SMALL]) == 0
        in_memory = capsys.readouterr().out
        assert main(
            ["estimate", "--prior", "stable_f", "--dataset", "geant",
             "--stream", "--chunk-bins", "3", *SMALL]
        ) == 0
        streamed = capsys.readouterr().out

        def mean_error(output: str) -> str:
            for line in output.splitlines():
                if line.startswith("mean estimation error "):
                    return line.split()[-1]
            raise AssertionError(f"no error line in {output!r}")

        assert mean_error(in_memory) == mean_error(streamed)

    def test_run_fig_experiments_accept_stream(self, capsys):
        code = main(["run", "fig13", "--bins-per-week", "36", "--stream", "--chunk-bins", "6"])
        assert code == 0
        assert "stable-f" in capsys.readouterr().out

    def test_run_rejects_stream_for_unsupported_experiment(self, capsys):
        code = main(["run", "fig5", "--stream"])
        assert code == 2
        err = capsys.readouterr().err
        assert "does not support --stream" in err
        assert "fig11" in err and "fig13" in err

    def test_sweep_accepts_stream(self, capsys):
        code = main(
            ["sweep", "--priors", "stable_f", "--datasets", "geant",
             "--stream", "--chunk-bins", "4", *SMALL]
        )
        assert code == 0
        assert "1 priors x 1 datasets" in capsys.readouterr().out

    def test_stream_rejects_invalid_chunk_bins(self, capsys):
        code = main(
            ["estimate", "--prior", "stable_f", "--dataset", "geant",
             "--stream", "--chunk-bins", "0", *SMALL]
        )
        assert code == 2
        assert "chunk_bins" in capsys.readouterr().err


class TestServe:
    def test_serve_replays_bundled_trace(self, tmp_path, capsys):
        sink = tmp_path / "out"
        code = main([
            "serve", "--source", "examples/sample_flows.csv", "--topology", "abilene",
            "--sink", str(sink), "--chunk-bins", "4", "--max-bins", "8",
        ])
        assert code == 0
        lines = (sink / "estimates.jsonl").read_text().splitlines()
        assert len(lines) == 8
        first = json.loads(lines[0])
        assert first["bin"] == 0 and first["prior"] == "gravity"
        assert np.all(np.isfinite(first["estimate"]))
        status = json.loads((sink / "status.json").read_text())
        assert status["bins_published"] == 8
        assert json.loads((sink / "checkpoint.json").read_text())["next_bin"] == 8
        assert "published 8 bins" in capsys.readouterr().err

    def test_serve_synthetic_source_with_rolling_fit(self, tmp_path, capsys):
        sink = tmp_path / "out"
        code = main([
            "serve", "--source", "synthetic", "--dataset", "geant",
            "--bins-per-week", "24", "--sink", str(sink), "--chunk-bins", "8",
            "--prior", "stable_fp", "--refit-every", "8", "--window-bins", "16",
        ])
        assert code == 0
        records = [json.loads(line) for line in (sink / "estimates.jsonl").read_text().splitlines()]
        assert len(records) == 24
        assert records[-1]["prior"] == "stable_fp"
        assert json.loads((sink / "status.json").read_text())["prior"]["refits"] >= 1

    def test_serve_file_source_requires_topology(self, capsys):
        code = main(["serve", "--source", "examples/sample_flows.csv"])
        assert code == 2
        assert "--topology" in capsys.readouterr().err

"""Tests for the TrafficMatrix / TrafficMatrixSeries containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.traffic_matrix import TrafficMatrix, TrafficMatrixSeries, od_pairs
from repro.errors import ShapeError, ValidationError


class TestOdPairs:
    def test_row_major_order(self):
        assert od_pairs(2) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_count(self):
        assert len(od_pairs(5)) == 25


class TestTrafficMatrix:
    def setup_method(self):
        self.values = np.array([[1.0, 2.0], [3.0, 4.0]])
        self.matrix = TrafficMatrix(self.values, ["a", "b"])

    def test_marginals(self):
        assert self.matrix.ingress.tolist() == [3.0, 7.0]
        assert self.matrix.egress.tolist() == [4.0, 6.0]
        assert self.matrix.total == pytest.approx(10.0)

    def test_vector_round_trip(self):
        vector = self.matrix.to_vector()
        rebuilt = TrafficMatrix.from_vector(vector, ["a", "b"])
        assert rebuilt.allclose(self.matrix)

    def test_from_vector_rejects_non_square_length(self):
        with pytest.raises(ShapeError):
            TrafficMatrix.from_vector(np.arange(5.0))

    def test_flow_by_name(self):
        assert self.matrix.flow("a", "b") == 2.0
        with pytest.raises(ValidationError):
            self.matrix.flow("a", "zz")

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError):
            TrafficMatrix([[1.0, -2.0], [0.0, 0.0]])

    def test_rejects_non_square(self):
        with pytest.raises(ShapeError):
            TrafficMatrix(np.ones((2, 3)))

    def test_scaled(self):
        doubled = self.matrix.scaled(2.0)
        assert doubled.total == pytest.approx(20.0)
        with pytest.raises(ValidationError):
            self.matrix.scaled(-1.0)

    def test_without_self_traffic(self):
        cleaned = self.matrix.without_self_traffic()
        assert np.trace(cleaned.values) == 0.0
        assert cleaned.values[0, 1] == 2.0

    def test_equality(self):
        assert self.matrix == TrafficMatrix(self.values, ["a", "b"])
        assert self.matrix != TrafficMatrix(self.values, ["x", "y"])

    def test_default_node_names(self):
        anonymous = TrafficMatrix(self.values)
        assert anonymous.nodes == ("node00", "node01")


class TestTrafficMatrixSeries:
    def setup_method(self):
        self.values = np.arange(24, dtype=float).reshape(6, 2, 2)
        self.series = TrafficMatrixSeries(self.values, ["a", "b"], bin_seconds=300.0)

    def test_basic_shape(self):
        assert self.series.n_timesteps == 6
        assert self.series.n_nodes == 2
        assert len(self.series) == 6

    def test_indexing_returns_matrix(self):
        first = self.series[0]
        assert isinstance(first, TrafficMatrix)
        assert first.values.tolist() == [[0.0, 1.0], [2.0, 3.0]]

    def test_slicing_returns_series(self):
        part = self.series[1:3]
        assert isinstance(part, TrafficMatrixSeries)
        assert part.n_timesteps == 2

    def test_values_read_only(self):
        view = self.series.values
        with pytest.raises(ValueError):
            view[0, 0, 0] = 99.0

    def test_marginals_shapes(self):
        assert self.series.ingress.shape == (6, 2)
        assert self.series.egress.shape == (6, 2)
        assert self.series.totals.shape == (6,)
        np.testing.assert_allclose(
            self.series.totals, self.values.sum(axis=(1, 2))
        )

    def test_mean_matrix(self):
        np.testing.assert_allclose(self.series.mean_matrix().values, self.values.mean(axis=0))

    def test_vector_round_trip(self):
        vectors = self.series.to_vectors()
        rebuilt = TrafficMatrixSeries.from_vectors(vectors, ["a", "b"], bin_seconds=300.0)
        np.testing.assert_allclose(rebuilt.values, self.series.values)

    def test_from_vectors_rejects_bad_width(self):
        with pytest.raises(ShapeError):
            TrafficMatrixSeries.from_vectors(np.ones((3, 5)))

    def test_subsample(self):
        sampled = self.series.subsample(2)
        assert sampled.n_timesteps == 3
        assert sampled.bin_seconds == 600.0
        with pytest.raises(ValidationError):
            self.series.subsample(0)

    def test_aggregate(self):
        aggregated = self.series.aggregate(3)
        assert aggregated.n_timesteps == 2
        np.testing.assert_allclose(aggregated.values[0], self.values[:3].sum(axis=0))
        with pytest.raises(ValidationError):
            self.series.aggregate(10)

    def test_split_weeks_explicit(self):
        weeks = self.series.split_weeks(bins_per_week=2)
        assert len(weeks) == 3
        assert all(week.n_timesteps == 2 for week in weeks)

    def test_concatenate(self):
        combined = self.series.concatenate(self.series)
        assert combined.n_timesteps == 12
        other_nodes = TrafficMatrixSeries(self.values, ["x", "y"], bin_seconds=300.0)
        with pytest.raises(ValidationError):
            self.series.concatenate(other_nodes)
        other_bins = TrafficMatrixSeries(self.values, ["a", "b"], bin_seconds=600.0)
        with pytest.raises(ValidationError):
            self.series.concatenate(other_bins)

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "series.npz"
        self.series.save(path)
        loaded = TrafficMatrixSeries.load(path)
        np.testing.assert_allclose(loaded.values, self.series.values)
        assert loaded.nodes == self.series.nodes
        assert loaded.bin_seconds == self.series.bin_seconds

    def test_rejects_negative_bin(self):
        with pytest.raises(ValidationError):
            TrafficMatrixSeries(self.values, bin_seconds=0.0)

    def test_single_matrix_promoted(self):
        single = TrafficMatrixSeries(np.ones((3, 3)))
        assert single.n_timesteps == 1

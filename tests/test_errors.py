"""The exception hierarchy contract: everything derives from ReproError."""

from __future__ import annotations

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exception_class",
    [
        errors.ValidationError,
        errors.ShapeError,
        errors.FittingError,
        errors.EstimationError,
        errors.TopologyError,
        errors.TraceError,
    ],
)
def test_all_errors_derive_from_repro_error(exception_class):
    assert issubclass(exception_class, errors.ReproError)


def test_value_like_errors_are_value_errors():
    assert issubclass(errors.ValidationError, ValueError)
    assert issubclass(errors.ShapeError, ValueError)
    assert issubclass(errors.TopologyError, ValueError)
    assert issubclass(errors.TraceError, ValueError)


def test_runtime_like_errors_are_runtime_errors():
    assert issubclass(errors.FittingError, RuntimeError)
    assert issubclass(errors.EstimationError, RuntimeError)


def test_catching_base_class_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.TraceError("boom")

"""Tests for the parallel grid sweep (ScenarioRunner.sweep with jobs > 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.scenarios import Scenario, ScenarioRunner
from repro.scenarios.runner import _run_sweep_batch

SMALL = {"bins_per_week": 36, "max_bins": 4}


def _run_one_cell(baseline, scenario, key):
    """Run a single cell through the worker batch entry point."""
    outcomes, trace_events = _run_sweep_batch(
        (baseline, None, True, [(0, scenario, key)], None)
    )
    assert trace_events == []  # untraced parent -> no span events shipped back
    [(_, result, message)] = outcomes
    return result, message


class TestRunSweepBatch:
    def test_success_returns_result(self):
        scenario = Scenario(dataset="geant", prior="stable_f", **SMALL)
        result, message = _run_one_cell("gravity", scenario, None)
        assert message is None
        assert result.errors.shape[0] == 4

    def test_failure_returns_message(self):
        # The stable-f closed form is singular at f = 0.5, so this cell fails.
        scenario = Scenario(
            dataset="geant", prior="stable_f", measured_forward_fraction=0.5, **SMALL
        )
        result, message = _run_one_cell("gravity", scenario, None)
        assert result is None
        assert "ValidationError" in message

    def test_batch_preserves_indices_and_shares_state(self):
        cells = [
            Scenario(dataset="geant", prior=prior, n_weeks=2, target_week=1, **SMALL)
            for prior in ("gravity", "stable_f")
        ]
        items = [(index + 5, cell, None) for index, cell in enumerate(cells)]
        outcomes, _ = _run_sweep_batch(("gravity", None, True, items, None))
        assert [index for index, _, _ in outcomes] == [5, 6]
        assert all(message is None for _, _, message in outcomes)


class TestParallelSweep:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self):
        kwargs = dict(
            priors=("stable_f", "gravity"),
            datasets=("geant",),
            base=dict(SMALL),
        )
        serial = ScenarioRunner().sweep(jobs=1, **kwargs)
        parallel = ScenarioRunner().sweep(jobs=2, **kwargs)
        return serial, parallel

    def test_parallel_matches_serial_bitwise(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert len(serial.results) == len(parallel.results) == 2
        assert not serial.failures and not parallel.failures
        for left, right in zip(serial.results, parallel.results):
            assert left.scenario == right.scenario
            assert np.array_equal(left.errors, right.errors)
            assert np.array_equal(left.prior_errors, right.prior_errors)

    def test_grid_order_is_preserved(self, serial_and_parallel):
        _, parallel = serial_and_parallel
        labels = [result.scenario.prior for result in parallel.results]
        assert labels == ["stable_f", "gravity"]

    def test_jobs_none_uses_cpu_count(self):
        result = ScenarioRunner().sweep(
            priors=("stable_f",),
            datasets=("geant",),
            base=dict(SMALL),
            jobs=None,
        )
        assert len(result.results) == 1

    def test_failures_are_collected_not_raised(self):
        result = ScenarioRunner().sweep(
            priors=("stable_f", "gravity"),
            datasets=("geant",),
            base=dict(SMALL),
            measured_forward_fraction=0.5,
            jobs=2,
        )
        # The stable-f cell dies on the singular f = 0.5; gravity survives.
        assert len(result.results) == 1
        assert len(result.failures) == 1
        assert result.failures[0][0].prior == "stable_f"

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioRunner().sweep(priors=(), datasets=("geant",), jobs=2)


class TestPreSynthesizedDatasets:
    """The parent synthesizes each dataset column once and ships it to workers."""

    def test_run_uses_shipped_dataset(self):
        # Ship a dataset generated with a *different* seed than the scenario
        # names; if run() honoured the scenario's own synthesis path instead
        # of the shipped arrays, the errors would match the default seed.
        from repro.synthesis.datasets import load_dataset

        scenario = Scenario(dataset="geant", prior="stable_f", n_weeks=2, **SMALL)
        default_result = ScenarioRunner().run(scenario)
        shipped = load_dataset("geant", n_weeks=2, bins_per_week=36, seed=777)
        shipped_result = ScenarioRunner().run(scenario, dataset=shipped)
        assert not np.allclose(default_result.errors, shipped_result.errors)

    def test_run_rejects_too_short_shipped_dataset(self):
        from repro.synthesis.datasets import load_dataset

        scenario = Scenario(
            dataset="geant", prior="stable_f", calibration_week=1, target_week=2, **SMALL
        )
        shipped = load_dataset("geant", n_weeks=1, bins_per_week=36)
        with pytest.raises(ValidationError, match="weeks"):
            ScenarioRunner().run(scenario, dataset=shipped)

    def test_worker_cell_prefers_shipped_dataset(self):
        from repro.scenarios.runner import _init_sweep_worker
        from repro.synthesis.datasets import load_dataset

        cell = Scenario(dataset="geant", prior="stable_f", n_weeks=2, **SMALL)
        key = ScenarioRunner._dataset_key(cell)
        assert key == ("geant", 2, 36, False, None)
        shipped = load_dataset("geant", n_weeks=2, bins_per_week=36, seed=777)
        _init_sweep_worker({key: shipped})
        try:
            result, message = _run_one_cell("gravity", cell, key)
            assert message is None
            baseline, _ = _run_one_cell("gravity", cell, None)
            assert not np.allclose(result.errors, baseline.errors)
        finally:
            _init_sweep_worker({})

    def test_streaming_cells_ship_plan_keys(self):
        cell = Scenario(dataset="geant", prior="stable_f", n_weeks=2, stream=True, **SMALL)
        key = ScenarioRunner._dataset_key(cell)
        assert key is not None and key[0] == "stream"
        # Streamed and in-memory columns must never collide in the worker map.
        assert key != ScenarioRunner._dataset_key(cell.replace(stream=False))
        assert ScenarioRunner._dataset_key(cell.replace(n_weeks=None)) is None

    def test_parallel_sweep_ships_column_synthesis(self):
        # End to end: a 2-prior column over one dataset, two workers.  The
        # results must be identical to the serial (cache-backed) sweep.
        kwargs = dict(priors=("stable_f", "gravity"), datasets=("geant",), base=dict(SMALL))
        serial = ScenarioRunner().sweep(jobs=1, **kwargs)
        parallel = ScenarioRunner().sweep(jobs=2, **kwargs)
        assert len(parallel.results) == len(serial.results) == 2
        for serial_cell, parallel_cell in zip(serial.results, parallel.results):
            assert np.array_equal(serial_cell.errors, parallel_cell.errors)


class TestSharedMemoryShipping:
    """Dataset columns travel through multiprocessing.shared_memory."""

    def test_export_attach_roundtrip_is_bitwise(self):
        from repro.scenarios.runner import (
            _attach_shm_array,
            _export_datasets_shm,
            _release_shm_blocks,
        )
        from repro.synthesis.datasets import load_dataset

        data = load_dataset("geant", n_weeks=2, bins_per_week=36)
        key = ("geant", 2, 36, False, None)
        payload, blocks = _export_datasets_shm({key: data})
        assert payload is not None and blocks
        segments = []
        try:
            kind, shell, weeks_meta = payload[key]
            assert kind == "cube"
            assert shell.weeks == [] and len(weeks_meta) == 2
            for (name, shape, bin_seconds), week in zip(weeks_meta, data.weeks):
                values, segment = _attach_shm_array(name, shape)
                segments.append(segment)
                assert bin_seconds == week.bin_seconds
                assert np.array_equal(values, week.values)
        finally:
            _release_shm_blocks(segments, unlink=False)
            _release_shm_blocks(blocks, unlink=True)

    def test_worker_init_reconstructs_datasets_from_shm(self):
        from repro.scenarios.runner import (
            _WORKER_DATASETS,
            _export_datasets_shm,
            _init_sweep_worker,
            _release_shm_blocks,
        )
        from repro.synthesis.datasets import load_dataset

        data = load_dataset("geant", n_weeks=2, bins_per_week=36)
        key = ("geant", 2, 36, False, None)
        payload, blocks = _export_datasets_shm({key: data})
        try:
            _init_sweep_worker({}, payload)
            rebuilt = _WORKER_DATASETS[key]
            assert rebuilt.n_weeks == 2
            assert rebuilt.topology.nodes == data.topology.nodes
            for original, mapped in zip(data.weeks, rebuilt.weeks):
                assert np.array_equal(original.values, mapped.values)
                assert original.bin_seconds == mapped.bin_seconds
        finally:
            _init_sweep_worker({})
            _release_shm_blocks(blocks, unlink=True)

    def test_sweep_falls_back_to_pickle_when_shm_unavailable(self, monkeypatch):
        import repro.scenarios.runner as runner_module

        monkeypatch.setattr(runner_module, "_export_datasets_shm", lambda datasets: (None, []))
        kwargs = dict(priors=("stable_f", "gravity"), datasets=("geant",), base=dict(SMALL))
        serial = ScenarioRunner().sweep(jobs=1, **kwargs)
        parallel = ScenarioRunner().sweep(jobs=2, **kwargs)
        assert not parallel.failures
        for serial_cell, parallel_cell in zip(serial.results, parallel.results):
            assert np.array_equal(serial_cell.errors, parallel_cell.errors)

"""Tests for the component registries and the Scenario API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RegistryError, ValidationError
from repro.registry import (
    DATASETS,
    ESTIMATORS,
    MODELS,
    PRIORS,
    TOPOLOGIES,
    Registry,
    canonical_name,
)
from repro.scenarios import Scenario, ScenarioRunner, run_scenario, sweep
from repro.synthesis.datasets import load_dataset

SMALL = {"bins_per_week": 36, "max_bins": 6}


# ---------------------------------------------------------------------------
# the Registry mechanism
# ---------------------------------------------------------------------------

class TestRegistryMechanism:
    def test_decorator_registration_and_lookup(self):
        registry = Registry("widget")

        @registry.register("spinner", description="spins")
        def make_spinner():
            return "spun"

        assert registry.get("spinner") is make_spinner
        assert registry.entry("spinner").description == "spins"
        assert registry.names() == ("spinner",)

    def test_direct_registration(self):
        registry = Registry("widget")
        registry.register("a", object(), description="x")
        assert "a" in registry
        assert len(registry) == 1

    def test_names_are_canonicalised(self):
        registry = Registry("widget")
        registry.register("Stable-fP", object())
        assert registry.names() == ("stable_fp",)
        assert registry.get("stable-fp") is registry.get("STABLE_FP")

    def test_duplicate_registration_raises(self):
        registry = Registry("widget")
        registry.register("a", object())
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("a", object())

    def test_duplicate_with_overwrite_replaces(self):
        registry = Registry("widget")
        first, second = object(), object()
        registry.register("a", first)
        registry.register("a", second, overwrite=True)
        assert registry.get("a") is second

    def test_unknown_lookup_names_choices(self):
        registry = Registry("widget")
        registry.register("alpha", object())
        registry.register("beta", object())
        with pytest.raises(RegistryError, match="alpha, beta"):
            registry.get("gamma")

    def test_description_defaults_to_docstring_first_line(self):
        registry = Registry("widget")

        @registry.register("doc")
        def documented():
            """First line.

            More detail.
            """

        assert registry.entry("doc").description == "First line."

    def test_empty_name_rejected(self):
        with pytest.raises(RegistryError):
            canonical_name("   ")

    def test_unregister_removes_entry(self):
        registry = Registry("widget")
        registry.register("a", object())
        registry.unregister("a")
        assert "a" not in registry
        with pytest.raises(RegistryError, match="unregister"):
            registry.unregister("a")

    def test_failed_population_is_retried(self, monkeypatch):
        import repro.registry as registry_module

        monkeypatch.setattr(registry_module, "_populated", False)
        monkeypatch.setattr(registry_module, "_COMPONENT_MODULES", ("repro.no_such_module",))
        with pytest.raises(ModuleNotFoundError):
            registry_module.ensure_populated()
        assert registry_module._populated is False
        monkeypatch.setattr(registry_module, "_COMPONENT_MODULES", ())
        registry_module.ensure_populated()
        assert registry_module._populated is True


class TestPopulatedRegistries:
    def test_priors_cover_paper_section_6(self):
        assert {"gravity", "measured", "stable_f", "stable_fp"} <= set(PRIORS.names())

    def test_datasets_cover_paper_data(self):
        assert {"geant", "totem"} <= set(DATASETS.names())
        assert DATASETS.entry("geant").metadata["calibration_gap"] == 1
        assert DATASETS.entry("totem").metadata["calibration_gap"] == 2

    def test_estimators_registered(self):
        assert {"tomogravity", "entropy"} <= set(ESTIMATORS.names())

    def test_topologies_registered(self):
        assert {"geant", "totem", "abilene", "random"} <= set(TOPOLOGIES.names())

    def test_models_cover_model_family(self):
        expected = {"gravity", "general", "simplified", "stable_f", "stable_fp", "time_varying"}
        assert expected <= set(MODELS.names())


# ---------------------------------------------------------------------------
# Scenario configuration
# ---------------------------------------------------------------------------

class TestScenario:
    def test_round_trip_through_plain_dict(self):
        scenario = Scenario(
            dataset="geant", prior="stable_fp", bins_per_week=96, max_bins=16, seed=3
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_round_trip_for_every_registered_prior(self):
        for prior in PRIORS.names():
            scenario = Scenario(dataset="totem", prior=prior)
            assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_component_names_are_canonicalised(self):
        scenario = Scenario(dataset="Geant", prior="stable-fP")
        assert scenario.dataset == "geant"
        assert scenario.prior == "stable_fp"

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown Scenario fields"):
            Scenario.from_dict({"dataset": "geant", "prior": "gravity", "bogus": 1})

    def test_from_dict_requires_dataset_and_prior(self):
        with pytest.raises(ValidationError, match="dataset"):
            Scenario.from_dict({"prior": "gravity"})
        with pytest.raises(ValidationError, match="prior"):
            Scenario.from_dict({"dataset": "geant"})

    def test_validate_rejects_unknown_components(self):
        with pytest.raises(RegistryError, match="registered priors"):
            Scenario(dataset="geant", prior="bogus").validate()
        with pytest.raises(RegistryError, match="registered datasets"):
            Scenario(dataset="bogus", prior="gravity").validate()
        with pytest.raises(RegistryError, match="registered estimators"):
            Scenario(dataset="geant", prior="gravity", estimator="bogus").validate()

    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(ValidationError):
            Scenario(dataset="geant", prior="gravity", calibration_week=-1).validate()
        with pytest.raises(ValidationError):
            Scenario(dataset="geant", prior="gravity", max_bins=0).validate()

    def test_label_and_replace(self):
        scenario = Scenario(dataset="geant", prior="gravity")
        assert scenario.label == "geant/gravity"
        assert scenario.replace(name="x").label == "x"
        assert scenario.replace(prior="stable_f").prior == "stable_f"


class TestWeekResolution:
    def test_measured_defaults_to_same_week(self):
        scenario = Scenario(dataset="geant", prior="measured")
        assert ScenarioRunner.resolve_weeks(scenario) == (0, 0)

    def test_stable_f_defaults_to_next_week(self):
        scenario = Scenario(dataset="geant", prior="stable_f")
        assert ScenarioRunner.resolve_weeks(scenario) == (0, 1)

    def test_stable_fp_uses_dataset_calibration_gap(self):
        assert ScenarioRunner.resolve_weeks(Scenario(dataset="geant", prior="stable_fp")) == (0, 1)
        assert ScenarioRunner.resolve_weeks(Scenario(dataset="totem", prior="stable_fp")) == (0, 2)

    def test_explicit_target_week_wins(self):
        scenario = Scenario(dataset="geant", prior="stable_fp", calibration_week=1, target_week=3)
        assert ScenarioRunner.resolve_weeks(scenario) == (1, 3)

    def test_gap_prior_rejects_same_week(self):
        scenario = Scenario(dataset="geant", prior="stable_fp", target_week=0)
        with pytest.raises(ValidationError, match="differ"):
            ScenarioRunner.resolve_weeks(scenario)


# ---------------------------------------------------------------------------
# running scenarios
# ---------------------------------------------------------------------------

class TestScenarioRunner:
    def test_run_produces_errors_improvement_and_timing(self):
        result = run_scenario(Scenario(dataset="geant", prior="stable_f", **SMALL))
        assert result.errors.shape == (6,)
        assert result.improvement is not None
        assert np.all(np.isfinite(result.improvement))
        assert set(result.timing) >= {"dataset", "prior", "estimation", "total", "peak_rss_mb"}
        assert result.timing["total"] > 0

    def test_run_accepts_plain_dicts(self):
        result = run_scenario({"dataset": "geant", "prior": "gravity", **SMALL})
        assert result.prior_label == "gravity"

    def test_matches_figure_driver_exactly(self):
        from repro.experiments.fig13_estimation_stable_f import run_estimation_stable_f

        driver = run_estimation_stable_f("geant", bins_per_week=36, max_bins=6)
        scenario = Scenario(dataset="geant", prior="stable_f", bins_per_week=36, max_bins=6)
        result = ScenarioRunner().run(scenario)
        np.testing.assert_array_equal(driver.improvement, result.improvement)
        np.testing.assert_array_equal(driver.ic_errors, result.errors)
        np.testing.assert_array_equal(driver.gravity_errors, result.baseline_errors)

    def test_no_baseline_runner_skips_comparison(self):
        runner = ScenarioRunner(baseline_prior=None)
        result = runner.run(Scenario(dataset="geant", prior="stable_f", **SMALL))
        assert result.improvement is None
        assert result.baseline_errors is None
        with pytest.raises(ValidationError):
            result.mean_improvement

    def test_gravity_scenario_runs_without_self_baseline(self):
        result = run_scenario(Scenario(dataset="geant", prior="gravity", **SMALL))
        assert result.improvement is None
        assert result.mean_error > 0

    def test_format_table_mentions_components(self):
        result = run_scenario(Scenario(dataset="geant", prior="stable_f", **SMALL))
        table = result.format_table()
        assert "stable-f" in table
        assert "mean improvement %" in table
        assert "tomogravity" in table

    def test_entropy_estimator_differs_from_tomogravity(self):
        base = Scenario(dataset="geant", prior="gravity", **SMALL)
        tomo = run_scenario(base)
        entropy = run_scenario(base.replace(estimator="entropy"))
        assert not np.array_equal(tomo.errors, entropy.errors)

    def test_topology_override_must_match_dataset_nodes(self):
        matching = run_scenario(Scenario(dataset="geant", prior="gravity", topology="geant", **SMALL))
        assert matching.mean_error > 0
        with pytest.raises(ValidationError, match="node sets must match"):
            run_scenario(Scenario(dataset="geant", prior="gravity", topology="abilene", **SMALL))
        with pytest.raises(ValidationError, match="parameter"):
            run_scenario(Scenario(dataset="geant", prior="gravity", topology="random", **SMALL))


class TestSweep:
    def test_grid_over_two_priors_and_two_datasets(self):
        result = sweep(priors=("stable_f", "gravity"), datasets=("geant", "totem"), **SMALL)
        assert len(result.results) == 4
        assert not result.failures
        labels = {r.scenario.label for r in result.results}
        assert labels == {
            "geant/stable_f", "geant/gravity", "totem/stable_f", "totem/gravity"
        }
        table = result.format_table()
        assert "geant" in table and "totem" in table

    def test_sweep_shares_dataset_synthesis(self):
        load_dataset.cache_clear()
        sweep(priors=("stable_f", "stable_f"), datasets=("geant",), **SMALL)
        info = load_dataset.cache_info()
        assert info.hits >= 1

    def test_sweep_runs_one_synthesis_per_dataset_across_week_modes(self):
        # gravity targets week 0, stable_f week 1: without a shared n_weeks
        # floor they would synthesize (and estimate against) different data.
        load_dataset.cache_clear()
        result = sweep(priors=("gravity", "stable_f"), datasets=("geant",), **SMALL)
        assert len(result.results) == 2
        assert load_dataset.cache_info().misses == 1

    def test_failed_cells_are_collected_not_raised(self):
        result = sweep(
            priors=("stable_fp",), datasets=("geant",), target_week=0, **SMALL
        )
        assert not result.results
        assert len(result.failures) == 1
        assert "target_week" in result.failures[0][1]
        assert "failed" in result.format_table()

    def test_sweep_requires_nonempty_axes(self):
        with pytest.raises(ValidationError):
            sweep(priors=(), datasets=("geant",))

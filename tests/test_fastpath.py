"""Tests for the incremental estimation fast path (:mod:`repro.estimation.fastpath`).

The contract under test is the one the fast path advertises:

* the structure detector only ever promotes a bin into the equal tier when
  its weight vector is bitwise identical to the base, and into the scaled
  tier when it is a positive scalar multiple within ``STRUCTURE_RTOL``;
* equal-tier and miss-tier bins reproduce the per-bin oracle **bit for
  bit**; scaled-tier bins stay within 1e-10 of it;
* warm starts change iteration counts, never fixed points (warm and cold
  solves agree to the IPF convergence tolerance), and the default
  instrumentation-free IPF path is bit-identical with the instrumentation
  switched on;
* end to end, a fast-path run equals the slow path: bit-identical on
  steady feeds (and on drifting feeds with warm starts off, where every
  bin falls back to the exact kernels), ≤1e-10 on exactly rescaled feeds,
  and within convergence tolerance across mid-stream prior swaps with
  warm starts on;
* caches invalidate atomically on prior swaps and survive checkpoint
  resume (a resumed fast service republishes the uninterrupted series).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.priors import StableFPrior
from repro.errors import ShapeError, ValidationError
from repro.estimation.fastpath import (
    STRUCTURE_RTOL,
    FactorizationCache,
    IPFSolveCache,
    classify_scaled_family,
)
from repro.estimation.ipf import iterative_proportional_fitting_series
from repro.estimation.linear_system import simulate_link_loads_streaming
from repro.estimation.pipeline import TMEstimator
from repro.estimation.tomogravity import _refine_chunk
from repro.ingest import FileReplaySource, IngestService, SyntheticFlowSource
from repro.obs import MetricsRegistry
from repro.scenarios import Scenario
from repro.streaming import ArrayChunkStream
from repro.synthesis.datasets import open_dataset_stream


def _read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def _rel_diff(a, b):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    scale = max(np.max(np.abs(b)), 1e-300)
    return float(np.max(np.abs(a - b)) / scale)


# ---------------------------------------------------------------------------
# the structure detector
# ---------------------------------------------------------------------------

class TestClassifyScaledFamily:
    def test_three_tiers_are_disjoint_and_complete(self):
        rng = np.random.default_rng(5)
        base = rng.gamma(2.0, 1.0, 12)
        vectors = np.stack([
            base,                       # equal
            2.5 * base,                 # scaled
            base * (1 + 1e-6 * rng.standard_normal(12)),  # miss: shape drift
            -1.0 * base,                # miss: negative scale
        ])
        equal, scaled, scales = classify_scaled_family(vectors, base)
        assert equal.tolist() == [True, False, False, False]
        assert scaled.tolist() == [False, True, False, False]
        assert not np.any(equal & scaled)
        assert scales[1] == pytest.approx(2.5, rel=1e-12)

    def test_tiny_relative_perturbation_stays_scaled(self):
        base = np.linspace(1.0, 2.0, 8)
        vec = 3.0 * base
        vec[0] += vec[0] * 1e-15  # well inside STRUCTURE_RTOL
        equal, scaled, _ = classify_scaled_family(vec[np.newaxis], base)
        assert not equal[0] and scaled[0]

    def test_zero_base_classifies_nothing_as_scaled(self):
        base = np.zeros(4)
        vectors = np.array([[1.0, 2.0, 3.0, 4.0], [0.0, 0.0, 0.0, 0.0]])
        equal, scaled, scales = classify_scaled_family(vectors, base)
        assert equal.tolist() == [False, True]
        assert not scaled.any()
        assert np.all(scales == 0.0)

    def test_rtol_is_respected(self):
        base = np.ones(6)
        vec = 2.0 * base
        vec[3] *= 1 + 1e-8
        _, scaled_tight, _ = classify_scaled_family(vec[np.newaxis], base)
        _, scaled_loose, _ = classify_scaled_family(vec[np.newaxis], base, rtol=1e-6)
        assert not scaled_tight[0] and scaled_loose[0]


# ---------------------------------------------------------------------------
# the tomogravity factorisation cache vs the per-bin oracle
# ---------------------------------------------------------------------------

def _toy_problem(seed=0, t=6, links=9, n_od=16):
    rng = np.random.default_rng(seed)
    matrix = (rng.random((links, n_od)) < 0.4).astype(float)
    matrix[0] = 1.0  # keep the system connected
    priors = rng.gamma(2.0, 10.0, (t, n_od))
    truth = priors * rng.uniform(0.8, 1.25, (t, n_od))
    observed = truth @ matrix.T
    return priors, matrix, observed


class TestFactorizationCache:
    def test_cold_chunk_is_all_misses_and_bit_identical(self):
        priors, matrix, observed = _toy_problem()
        cache = FactorizationCache()
        estimates, chunk = cache.refine(priors, matrix, observed)
        oracle = _refine_chunk(priors, matrix, observed, None)
        np.testing.assert_array_equal(estimates, oracle)
        assert chunk == {"hits_equal": 0, "hits_scaled": 0, "misses": priors.shape[0]}

    def test_equal_tier_replay_is_bit_identical(self):
        priors, matrix, observed = _toy_problem()
        steady = np.repeat(priors[-1:], 5, axis=0)
        cache = FactorizationCache()
        cache.refine(priors, matrix, observed)  # anchors on the last miss
        estimates, chunk = cache.refine(steady, matrix, observed[:5])
        oracle = _refine_chunk(steady, matrix, observed[:5], None)
        np.testing.assert_array_equal(estimates, oracle)
        assert chunk["hits_equal"] == 5 and chunk["misses"] == 0

    def test_scaled_tier_matches_oracle_within_budget(self):
        priors, matrix, observed = _toy_problem(seed=3)
        scales = np.array([0.5, 1.7, 3.0, 0.9, 2.2])
        family = scales[:, np.newaxis] * priors[-1]
        cache = FactorizationCache()
        cache.refine(priors, matrix, observed)
        estimates, chunk = cache.refine(family, matrix, observed[:5])
        oracle = _refine_chunk(family, matrix, observed[:5], None)
        assert chunk["hits_scaled"] == 5
        assert _rel_diff(estimates, oracle) <= 1e-10

    def test_drifting_priors_fall_back_bit_identical(self):
        priors, matrix, observed = _toy_problem(seed=7)
        cache = FactorizationCache()
        cache.refine(priors[:3], matrix, observed[:3])
        estimates, chunk = cache.refine(priors[3:], matrix, observed[3:])
        oracle = _refine_chunk(priors[3:], matrix, observed[3:], None)
        np.testing.assert_array_equal(estimates, oracle)
        assert chunk["misses"] == 3

    def test_key_change_invalidates(self):
        priors, matrix, observed = _toy_problem()
        steady = np.repeat(priors[-1:], 2, axis=0)
        cache = FactorizationCache()
        cache.refine(priors, matrix, observed, key=1)
        _, chunk = cache.refine(steady, matrix, observed[:2], key=2)
        assert chunk["hits_equal"] == 0 and chunk["misses"] == 2
        assert cache.invalidations == 1

    def test_matrix_identity_change_invalidates(self):
        priors, matrix, observed = _toy_problem()
        steady = np.repeat(priors[-1:], 2, axis=0)
        cache = FactorizationCache()
        cache.refine(priors, matrix, observed)
        _, chunk = cache.refine(steady, matrix.copy(), observed[:2])
        assert chunk["misses"] == 2

    def test_stats_accumulate(self):
        priors, matrix, observed = _toy_problem()
        cache = FactorizationCache()
        cache.refine(priors, matrix, observed)
        cache.refine(np.repeat(priors[-1:], 4, axis=0), matrix, observed[:4])
        stats = cache.stats()
        assert stats["misses"] == priors.shape[0]
        assert stats["hits_equal"] == 4
        cache.invalidate()
        assert cache.stats()["invalidations"] == 1


# ---------------------------------------------------------------------------
# the IPF solve cache: memoisation tiers and warm starts
# ---------------------------------------------------------------------------

def _ipf_problem(seed=11, t=5, n=6):
    rng = np.random.default_rng(seed)
    seeds = rng.gamma(2.0, 5.0, (t, n, n))
    targets = rng.gamma(2.0, 5.0, (t, n, n))
    return seeds, targets.sum(axis=2), targets.sum(axis=1)


class TestIPFSolveCache:
    def test_cold_fit_matches_direct_series(self):
        seeds, rows, cols = _ipf_problem()
        cache = IPFSolveCache()
        solutions, chunk, counts = cache.fit(seeds, rows, cols)
        direct = iterative_proportional_fitting_series(seeds, rows, cols)
        np.testing.assert_array_equal(solutions, direct)
        assert chunk["solved"] == seeds.shape[0]
        assert counts.shape == (seeds.shape[0],) and np.all(counts >= 1)

    def test_equal_tier_replay_is_bit_identical(self):
        seeds, rows, cols = _ipf_problem()
        cache = IPFSolveCache()
        cache.fit(seeds, rows, cols)
        steady = (np.repeat(seeds[-1:], 3, axis=0),
                  np.repeat(rows[-1:], 3, axis=0),
                  np.repeat(cols[-1:], 3, axis=0))
        solutions, chunk, counts = cache.fit(*steady)
        direct = iterative_proportional_fitting_series(*steady)
        np.testing.assert_array_equal(solutions, direct)
        assert chunk == {"hits_equal": 3, "hits_scaled": 0, "solved": 0}
        assert counts.size == 0

    def test_scaled_tier_rescales_the_cached_solution(self):
        seeds, rows, cols = _ipf_problem(seed=2)
        cache = IPFSolveCache()
        cache.fit(seeds, rows, cols)
        scales = np.array([0.25, 1.5, 4.0])
        family = (scales[:, np.newaxis, np.newaxis] * seeds[-1],
                  scales[:, np.newaxis] * rows[-1],
                  scales[:, np.newaxis] * cols[-1])
        solutions, chunk, _ = cache.fit(*family)
        direct = iterative_proportional_fitting_series(*family)
        assert chunk["hits_scaled"] == 3
        assert _rel_diff(solutions, direct) <= 1e-10

    def test_unsafe_base_disables_the_scaled_tier(self):
        seeds, rows, cols = _ipf_problem(seed=4)
        seeds[-1, 2, :] = 0.0  # empty-but-needed row: reseeding breaks scaling
        assert rows[-1, 2] > 0
        cache = IPFSolveCache()
        cache.fit(seeds, rows, cols)
        family = (2.0 * seeds[-1:], 2.0 * rows[-1:], 2.0 * cols[-1:])
        _, chunk, _ = cache.fit(*family)
        assert chunk["hits_scaled"] == 0 and chunk["solved"] == 1

    def test_inconsistent_component_scales_fall_back_to_solve(self):
        seeds, rows, cols = _ipf_problem(seed=6)
        cache = IPFSolveCache()
        cache.fit(seeds, rows, cols)
        # Seed doubled but marginals tripled: no single family scale exists.
        mixed = (2.0 * seeds[-1:], 3.0 * rows[-1:], 3.0 * cols[-1:])
        _, chunk, _ = cache.fit(*mixed)
        assert chunk["hits_scaled"] == 0 and chunk["solved"] == 1

    def test_warm_start_changes_counts_not_fixed_points(self):
        rng = np.random.default_rng(19)
        seeds, rows, cols = _ipf_problem(seed=19, t=8)
        # A slowly drifting family: consecutive bins are near-rescales, the
        # regime where a warm start should pay.
        for t in range(1, 8):
            seeds[t] = seeds[0] * (1 + 0.01 * t)
            rows[t] = rows[0] * (1 + 0.01 * t) * (1 + 1e-4 * rng.random(rows.shape[1]))
            cols[t] = rows[t] * 0 + cols[0] * (1 + 0.01 * t)
        cold = IPFSolveCache()
        _, _, cold_counts = cold.fit(seeds, rows, cols)
        warm = IPFSolveCache()
        warm.fit(seeds[:1], rows[:1], cols[:1], warm_start=True)
        warm_solutions, chunk, warm_counts = warm.fit(
            seeds[1:], rows[1:], cols[1:], warm_start=True
        )
        direct = iterative_proportional_fitting_series(seeds[1:], rows[1:], cols[1:])
        assert warm.warm_solved == chunk["solved"] > 0
        # Warm and cold solves approximate the same fixed point but each
        # stops at the convergence tolerance (1e-8), so they agree to
        # tolerance level, not to machine precision.
        assert _rel_diff(warm_solutions, direct) <= 1e-7
        assert warm_counts.sum() <= cold_counts[1:].sum()

    def test_warm_solves_never_anchor_the_memo_base(self):
        seeds, rows, cols = _ipf_problem(seed=23)
        cache = IPFSolveCache()
        cache.fit(seeds[:1], rows[:1], cols[:1], warm_start=True)  # cold anchor
        cache.fit(seeds[1:], rows[1:], cols[1:], warm_start=True)  # warm: no anchor
        # A replay of the *first* bin must still hit the equal tier bitwise.
        solutions, chunk, _ = cache.fit(seeds[:1], rows[:1], cols[:1], warm_start=True)
        assert chunk["hits_equal"] == 1
        direct = iterative_proportional_fitting_series(seeds[:1], rows[:1], cols[:1])
        np.testing.assert_array_equal(solutions, direct)


# ---------------------------------------------------------------------------
# IPF instrumentation kwargs: inert by default, validated when used
# ---------------------------------------------------------------------------

class TestIPFInstrumentation:
    def test_instrumented_default_path_is_bit_identical(self):
        seeds, rows, cols = _ipf_problem(seed=31)
        plain = iterative_proportional_fitting_series(seeds, rows, cols)
        counts = np.zeros(seeds.shape[0], dtype=np.intp)
        state: dict = {}
        instrumented = iterative_proportional_fitting_series(
            seeds, rows, cols, iteration_counts=counts, scale_state=state
        )
        np.testing.assert_array_equal(plain, instrumented)
        assert np.all(counts >= 1)
        assert state["row"].shape == rows.shape and state["col"].shape == cols.shape

    def test_zero_total_bins_report_zero_iterations(self):
        seeds, rows, cols = _ipf_problem(seed=37, t=3)
        rows[1] = 0.0
        cols[1] = 0.0
        counts = np.zeros(3, dtype=np.intp)
        iterative_proportional_fitting_series(seeds, rows, cols, iteration_counts=counts)
        assert counts[1] == 0 and counts[0] >= 1 and counts[2] >= 1

    def test_warm_scales_round_trip_through_scale_state(self):
        seeds, rows, cols = _ipf_problem(seed=41, t=2)
        state: dict = {}
        first = iterative_proportional_fitting_series(
            seeds[:1], rows[:1], cols[:1], scale_state=state
        )
        # Feeding a solve's own accumulated scales back as the warm start of
        # the identical problem converges immediately to the same point.
        counts = np.zeros(1, dtype=np.intp)
        warm = iterative_proportional_fitting_series(
            seeds[:1], rows[:1], cols[:1],
            initial_row_scale=np.maximum(state["row"][:1], 1e-12),
            initial_col_scale=np.maximum(state["col"][:1], 1e-12),
            iteration_counts=counts,
        )
        assert _rel_diff(warm, first) <= 1e-8
        assert counts[0] <= 3

    def test_initial_scales_must_come_together(self):
        seeds, rows, cols = _ipf_problem(t=2)
        with pytest.raises(ValidationError, match="together"):
            iterative_proportional_fitting_series(
                seeds, rows, cols, initial_row_scale=np.ones_like(rows)
            )

    def test_initial_scale_shape_checked(self):
        seeds, rows, cols = _ipf_problem(t=2)
        with pytest.raises(ShapeError, match="initial scales"):
            iterative_proportional_fitting_series(
                seeds, rows, cols,
                initial_row_scale=np.ones(3), initial_col_scale=np.ones_like(cols),
            )

    def test_initial_scales_must_be_positive_and_finite(self):
        seeds, rows, cols = _ipf_problem(t=2)
        bad = np.ones_like(rows)
        bad[0, 0] = 0.0
        with pytest.raises(ValidationError, match="strictly positive"):
            iterative_proportional_fitting_series(
                seeds, rows, cols, initial_row_scale=bad, initial_col_scale=np.ones_like(cols)
            )
        bad[0, 0] = np.inf
        with pytest.raises(ValidationError, match="finite"):
            iterative_proportional_fitting_series(
                seeds, rows, cols, initial_row_scale=bad, initial_col_scale=np.ones_like(cols)
            )

    def test_iteration_counts_shape_checked(self):
        seeds, rows, cols = _ipf_problem(t=2)
        with pytest.raises(ShapeError, match="iteration_counts"):
            iterative_proportional_fitting_series(
                seeds, rows, cols, iteration_counts=np.zeros(5, dtype=np.intp)
            )


# ---------------------------------------------------------------------------
# estimator-level equivalence: fast path on vs off
# ---------------------------------------------------------------------------

def _family_feed(topology, *, bins, scales=None, drift=0.0, seed=101):
    """An exactly rescaled (or drifting) traffic cube + matching gravity prior."""
    n = len(topology.nodes)
    rng = np.random.default_rng(seed)
    base = rng.gamma(2.0, 40.0, (n, n))
    np.fill_diagonal(base, 0.0)
    if scales is None:
        scales = np.ones(bins)
    cube = scales[:, np.newaxis, np.newaxis] * base
    if drift:
        shapes = 1 + drift * rng.standard_normal((bins, n, n))
        cube = np.abs(cube * shapes)
        np.fill_diagonal(cube.reshape(bins, n, n)[0], 0.0)
        for t in range(bins):
            np.fill_diagonal(cube[t], 0.0)
    ingress = cube.sum(axis=2)
    egress = cube.sum(axis=1)
    total = ingress.sum(axis=1)
    prior = ingress[:, :, np.newaxis] * egress[:, np.newaxis, :] / total[:, np.newaxis, np.newaxis]
    for t in range(bins):
        np.fill_diagonal(prior[t], 0.0)
    return cube, prior


def _stream_pair(topology, cube, prior, chunk):
    stream = ArrayChunkStream(cube, topology.nodes, bin_seconds=300.0, chunk_bins=chunk)
    system = simulate_link_loads_streaming(topology, stream)
    prior_stream = ArrayChunkStream(
        prior, topology.nodes, bin_seconds=300.0, chunk_bins=chunk
    )
    return system, prior_stream


class TestEstimatorEquivalence:
    @pytest.mark.parametrize("chunk", [4, 7])
    def test_steady_feed_is_bit_identical(self, abilene, chunk):
        cube, prior = _family_feed(abilene, bins=12)
        system, prior_stream = _stream_pair(abilene, cube, prior, chunk)
        fast = TMEstimator(fast_path=True).estimate_stream(
            system, prior_stream, collect_estimate=True
        )
        system, prior_stream = _stream_pair(abilene, cube, prior, chunk)
        slow = TMEstimator().estimate_stream(system, prior_stream, collect_estimate=True)
        np.testing.assert_array_equal(fast.estimate.values, slow.estimate.values)

    @pytest.mark.parametrize("chunk", [4, 7])
    def test_scaled_feed_within_budget_and_hits_scaled_tier(self, abilene, chunk):
        scales = 1.0 + 0.3 * np.sin(np.linspace(0.0, 2 * np.pi, 12, endpoint=False))
        cube, prior = _family_feed(abilene, bins=12, scales=scales)
        system, prior_stream = _stream_pair(abilene, cube, prior, chunk)
        estimator = TMEstimator(fast_path=True)
        fast = estimator.estimate_stream(system, prior_stream, collect_estimate=True)
        system, prior_stream = _stream_pair(abilene, cube, prior, chunk)
        slow = TMEstimator().estimate_stream(system, prior_stream, collect_estimate=True)
        assert _rel_diff(fast.estimate.values, slow.estimate.values) <= 1e-10
        stats = estimator.fast_path_stats()
        assert stats["factor_cache"]["hits_scaled"] > 0

    def test_drifting_feed_with_warm_off_is_bit_identical(self, abilene):
        cube, prior = _family_feed(abilene, bins=8, drift=0.05)
        system, prior_stream = _stream_pair(abilene, cube, prior, 4)
        estimator = TMEstimator(fast_path=True, warm_start=False)
        fast = estimator.estimate_stream(system, prior_stream, collect_estimate=True)
        system, prior_stream = _stream_pair(abilene, cube, prior, 4)
        slow = TMEstimator().estimate_stream(system, prior_stream, collect_estimate=True)
        np.testing.assert_array_equal(fast.estimate.values, slow.estimate.values)
        assert estimator.fast_path_stats()["factor_cache"]["misses"] > 0

    def test_drifting_feed_with_warm_on_stays_within_budget(self, abilene):
        cube, prior = _family_feed(abilene, bins=8, drift=0.05)
        system, prior_stream = _stream_pair(abilene, cube, prior, 4)
        fast = TMEstimator(fast_path=True).estimate_stream(
            system, prior_stream, collect_estimate=True
        )
        system, prior_stream = _stream_pair(abilene, cube, prior, 4)
        slow = TMEstimator().estimate_stream(system, prior_stream, collect_estimate=True)
        # Convergence-tolerance-level budget: warm-started IPF solves stop
        # at the same 1e-8 tolerance as cold ones but along another path.
        assert _rel_diff(fast.estimate.values, slow.estimate.values) <= 1e-7

    def test_batch_estimate_honours_fast_path(self, abilene):
        cube, prior = _family_feed(abilene, bins=6)
        stream = ArrayChunkStream(cube, abilene.nodes, bin_seconds=300.0, chunk_bins=6)
        system = simulate_link_loads_streaming(abilene, stream)
        from repro.core.traffic_matrix import TrafficMatrixSeries
        prior_series = TrafficMatrixSeries(prior, abilene.nodes, bin_seconds=300.0)
        fast = TMEstimator(fast_path=True).estimate(system, prior_series)
        slow = TMEstimator().estimate(system, prior_series)
        np.testing.assert_array_equal(fast.estimate.values, slow.estimate.values)

    def test_warm_start_defaults_follow_fast_path(self):
        assert TMEstimator(fast_path=True).warm_start_enabled
        assert not TMEstimator(fast_path=True, warm_start=False).warm_start_enabled
        assert not TMEstimator().fast_path_enabled
        assert TMEstimator().fast_path_stats() is None

    def test_invalidate_fast_path_drops_cache_state(self, abilene):
        cube, prior = _family_feed(abilene, bins=4)
        system, prior_stream = _stream_pair(abilene, cube, prior, 4)
        estimator = TMEstimator(fast_path=True)
        estimator.estimate_stream(system, prior_stream, collect_estimate=True)
        estimator.invalidate_fast_path()
        system, prior_stream = _stream_pair(abilene, cube, prior, 4)
        estimator.estimate_stream(system, prior_stream, collect_estimate=True)
        # The replay after invalidation re-anchors instead of hitting.
        assert estimator.fast_path_stats()["factor_cache"]["misses"] >= 2


# ---------------------------------------------------------------------------
# service-level equivalence, metrics, swap invalidation, checkpoint resume
# ---------------------------------------------------------------------------

def _served(tmp_path, topology, cube, *, estimator, tag, chunk=4, **service_kwargs):
    sink = tmp_path / f"{tag}.jsonl"
    stream = ArrayChunkStream(cube, topology.nodes, bin_seconds=300.0, chunk_bins=chunk)
    service = IngestService(
        SyntheticFlowSource(stream),
        topology,
        bin_seconds=300.0,
        chunk_bins=chunk,
        estimator=estimator,
        sink=sink,
        **service_kwargs,
    )
    status = service.run()
    return sink, status


class TestServiceFastPath:
    def test_steady_feed_publishes_identical_jsonl(self, tmp_path, abilene):
        cube, _ = _family_feed(abilene, bins=12)
        fast_est = TMEstimator(fast_path=True)
        fast_sink, fast_status = _served(
            tmp_path, abilene, cube, estimator=fast_est, tag="fast"
        )
        slow_sink, _ = _served(tmp_path, abilene, cube, estimator=TMEstimator(), tag="slow")
        assert _read_jsonl(fast_sink) == _read_jsonl(slow_sink)
        stats = fast_est.fast_path_stats()
        assert stats["factor_cache"]["hits_equal"] > 0
        assert stats["ipf_cache"]["hits_equal"] > 0
        assert fast_status.fast_path == stats

    def test_scaled_feed_within_budget(self, tmp_path, abilene):
        scales = 1.0 + 0.25 * np.sin(np.linspace(0.0, 2 * np.pi, 16, endpoint=False))
        cube, _ = _family_feed(abilene, bins=16, scales=scales)
        fast_est = TMEstimator(fast_path=True)
        fast_sink, _ = _served(tmp_path, abilene, cube, estimator=fast_est, tag="fast")
        slow_sink, _ = _served(tmp_path, abilene, cube, estimator=TMEstimator(), tag="slow")
        fast = np.array([r["estimate"] for r in _read_jsonl(fast_sink)])
        slow = np.array([r["estimate"] for r in _read_jsonl(slow_sink)])
        assert _rel_diff(fast, slow) <= 1e-10
        assert fast_est.fast_path_stats()["factor_cache"]["hits_scaled"] > 0

    def test_status_snapshot_and_metrics_surface_cache_counters(self, tmp_path, abilene):
        cube, _ = _family_feed(abilene, bins=8)
        registry = MetricsRegistry()
        fast_est = TMEstimator(fast_path=True)
        _, status = _served(
            tmp_path, abilene, cube, estimator=fast_est, tag="fast",
            status_path=tmp_path / "status.json", metrics=registry,
        )
        snapshot = json.loads((tmp_path / "status.json").read_text())
        section = snapshot["fast_path"]
        assert section["enabled"] is True
        assert section["factor_cache"]["hits_equal"] > 0
        metrics = registry.snapshot()
        hits = sum(v for k, v in metrics.items()
                   if k.startswith("repro_estimate_factor_cache_hits"))
        assert hits == section["factor_cache"]["hits_equal"] + section["factor_cache"]["hits_scaled"]
        assert metrics['repro_estimate_factor_cache_misses'] == section["factor_cache"]["misses"]
        assert any(k.startswith("repro_estimate_ipf_cache_hits") for k in metrics)

    def test_slow_estimator_status_reports_disabled(self, tmp_path, abilene):
        cube, _ = _family_feed(abilene, bins=4)
        _, status = _served(
            tmp_path, abilene, cube, estimator=TMEstimator(), tag="slow",
            status_path=tmp_path / "status.json",
        )
        snapshot = json.loads((tmp_path / "status.json").read_text())
        assert snapshot["fast_path"] == {"enabled": False}
        assert status.to_dict()["fast_path"] == {"enabled": False}

    @pytest.mark.parametrize("warm,budget", [(False, 0.0), (True, 1e-7)])
    def test_mid_stream_prior_swap(self, tmp_path, warm, budget):
        """A stable-fP re-fit swaps the prior mid-feed; the fast path must
        invalidate atomically and track the slow path through the swap."""
        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=24, seed=23)
        kwargs = dict(prior="stable_fp", refit_every=8, window_bins=16)
        fast_est = TMEstimator(fast_path=True, warm_start=warm)
        fast_sink = tmp_path / "fast.jsonl"
        fast_status = IngestService(
            SyntheticFlowSource(data.full_stream(chunk_bins=4)), data.topology,
            bin_seconds=data.full_stream().bin_seconds, chunk_bins=4,
            estimator=fast_est, sink=fast_sink, **kwargs,
        ).run()
        slow_sink = tmp_path / "slow.jsonl"
        IngestService(
            SyntheticFlowSource(data.full_stream(chunk_bins=4)), data.topology,
            bin_seconds=data.full_stream().bin_seconds, chunk_bins=4,
            estimator=TMEstimator(), sink=slow_sink, **kwargs,
        ).run()
        fast_records = _read_jsonl(fast_sink)
        slow_records = _read_jsonl(slow_sink)
        # The swap actually happened, and both runs saw the same one.
        assert fast_status.refits >= 1
        assert [r["prior_version"] for r in fast_records] == \
               [r["prior_version"] for r in slow_records]
        assert len({r["prior"] for r in fast_records}) == 2
        if budget == 0.0:
            assert fast_records == slow_records
        else:
            fast = np.array([r["estimate"] for r in fast_records])
            slow = np.array([r["estimate"] for r in slow_records])
            assert _rel_diff(fast, slow) <= budget

    @pytest.mark.parametrize("warm,budget", [(False, 0.0), (True, 1e-7)])
    def test_checkpoint_resume_matches_uninterrupted_fast_run(
        self, tmp_path, abilene, warm, budget
    ):
        trace = "examples/sample_flows.csv"
        common = dict(bin_seconds=300.0, chunk_bins=4)

        full_sink = tmp_path / "full.jsonl"
        IngestService(
            FileReplaySource(trace, abilene.nodes), abilene, sink=full_sink,
            estimator=TMEstimator(fast_path=True, warm_start=warm), **common,
        ).run()

        sink = tmp_path / "resumed.jsonl"
        checkpoint = tmp_path / "checkpoint.json"
        IngestService(
            FileReplaySource(trace, abilene.nodes), abilene,
            estimator=TMEstimator(fast_path=True, warm_start=warm),
            sink=sink, checkpoint_path=checkpoint, max_bins=8, **common,
        ).run()
        IngestService(
            FileReplaySource(trace, abilene.nodes), abilene,
            estimator=TMEstimator(fast_path=True, warm_start=warm),
            sink=sink, checkpoint_path=checkpoint, **common,
        ).run()
        if budget == 0.0:
            assert _read_jsonl(sink) == _read_jsonl(full_sink)
        else:
            resumed = np.array([r["estimate"] for r in _read_jsonl(sink)])
            full = np.array([r["estimate"] for r in _read_jsonl(full_sink)])
            assert _rel_diff(resumed, full) <= budget

    def test_fast_service_equals_slow_on_trace_replay(self, tmp_path, abilene):
        """The CI smoke's dual replay in miniature: same trace, fast vs slow."""
        trace = "examples/sample_flows.csv"
        common = dict(bin_seconds=300.0, chunk_bins=4)
        fast_sink = tmp_path / "fast.jsonl"
        IngestService(
            FileReplaySource(trace, abilene.nodes), abilene, sink=fast_sink,
            estimator=TMEstimator(fast_path=True, warm_start=False), **common,
        ).run()
        slow_sink = tmp_path / "slow.jsonl"
        IngestService(
            FileReplaySource(trace, abilene.nodes), abilene, sink=slow_sink,
            estimator=TMEstimator(), **common,
        ).run()
        assert _read_jsonl(fast_sink) == _read_jsonl(slow_sink)


# ---------------------------------------------------------------------------
# scenario plumbing
# ---------------------------------------------------------------------------

class TestScenarioFastPath:
    def test_round_trips_through_dict(self):
        scenario = Scenario(dataset="geant", prior="gravity", fast_path=True)
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        assert scenario.validate() is scenario

    def test_defaults_off(self):
        assert Scenario(dataset="geant", prior="gravity").fast_path is False

    def test_runner_threads_fast_path_through(self):
        from repro.scenarios import run_scenario
        base = Scenario(
            dataset="geant", prior="gravity", bins_per_week=12, max_bins=12,
            measurement_noise=0.0,
        )
        slow = run_scenario(base)
        fast = run_scenario(base.replace(fast_path=True))
        assert _rel_diff(fast.estimate.values, slow.estimate.values) <= 1e-10

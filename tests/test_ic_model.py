"""Tests for the IC model family (Eqs. 1-5) and degrees-of-freedom accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ic_model import (
    GeneralICModel,
    ICParameters,
    SimplifiedICModel,
    StableFICModel,
    StableFPICModel,
    TimeVaryingICModel,
    degrees_of_freedom,
    general_ic_matrix,
    simplified_ic_matrix,
    simplified_ic_series,
)
from repro.errors import ShapeError, ValidationError


class TestSimplifiedMatrix:
    def test_manual_two_node_case(self):
        # f=0.5, A=(10, 0), P=(0.5, 0.5): node 0's connections split equally
        # across both responders, with symmetric forward/reverse volumes.
        matrix = simplified_ic_matrix(0.5, [10.0, 0.0], [0.5, 0.5])
        expected = np.array([[5.0, 2.5], [2.5, 0.0]])
        np.testing.assert_allclose(matrix, expected)

    def test_marginal_identities(self):
        """Ingress X_i* = f*A_i + (1-f)*P_i*sum(A); egress symmetric."""
        rng = np.random.default_rng(0)
        activity = rng.random(6) * 100
        preference = rng.random(6)
        preference = preference / preference.sum()
        f = 0.3
        matrix = simplified_ic_matrix(f, activity, preference)
        ingress = matrix.sum(axis=1)
        egress = matrix.sum(axis=0)
        np.testing.assert_allclose(ingress, f * activity + (1 - f) * preference * activity.sum())
        np.testing.assert_allclose(egress, (1 - f) * activity + f * preference * activity.sum())

    def test_total_equals_total_activity(self):
        rng = np.random.default_rng(1)
        activity = rng.random(5) * 10
        preference = rng.random(5)
        matrix = simplified_ic_matrix(0.2, activity, preference)
        assert matrix.sum() == pytest.approx(activity.sum())

    def test_preference_normalisation_is_internal(self):
        activity = np.array([1.0, 2.0, 3.0])
        a = simplified_ic_matrix(0.3, activity, [1.0, 1.0, 2.0])
        b = simplified_ic_matrix(0.3, activity, [0.25, 0.25, 0.5])
        np.testing.assert_allclose(a, b)

    def test_invalid_f_rejected(self):
        with pytest.raises(ValidationError):
            simplified_ic_matrix(1.5, [1.0, 1.0], [0.5, 0.5])

    def test_negative_activity_rejected(self):
        with pytest.raises(ValidationError):
            simplified_ic_matrix(0.2, [-1.0, 1.0], [0.5, 0.5])


class TestGeneralMatrix:
    def test_reduces_to_simplified_for_constant_f(self):
        rng = np.random.default_rng(2)
        n = 5
        activity = rng.random(n) * 50
        preference = rng.random(n)
        f = 0.3
        general = general_ic_matrix(np.full((n, n), f), activity, preference)
        simplified = simplified_ic_matrix(f, activity, preference)
        np.testing.assert_allclose(general, simplified)

    def test_uses_f_ij_forward_and_f_ji_reverse(self):
        # Two nodes, only node 0 active; f_01 governs the forward part of
        # X_01, while X_10 is the reverse of the same connections: 1 - f_01.
        f = np.array([[0.5, 0.8], [0.1, 0.5]])
        activity = np.array([100.0, 0.0])
        preference = np.array([0.0, 1.0])
        matrix = general_ic_matrix(f, activity, preference)
        assert matrix[0, 1] == pytest.approx(80.0)
        assert matrix[1, 0] == pytest.approx(20.0)

    def test_rejects_out_of_range_f(self):
        with pytest.raises(ValidationError):
            general_ic_matrix(np.full((2, 2), 1.2), [1.0, 1.0], [0.5, 0.5])

    def test_rejects_non_square_f(self):
        with pytest.raises(ShapeError):
            general_ic_matrix(np.ones((2, 3)), [1.0, 1.0], [0.5, 0.5])


class TestSeriesHelpers:
    def test_vectorised_matches_loop(self):
        rng = np.random.default_rng(3)
        activity = rng.random((7, 4)) * 10
        preference = rng.random(4)
        f = 0.25
        batch = simplified_ic_series(f, activity, preference)
        for t in range(7):
            np.testing.assert_allclose(batch[t], simplified_ic_matrix(f, activity[t], preference))

    def test_single_row_promoted(self):
        result = simplified_ic_series(0.3, np.ones(3), np.ones(3))
        assert result.shape == (1, 3, 3)


class TestICParameters:
    def test_normalises_preference(self):
        params = ICParameters(0.2, [2.0, 2.0], [1.0, 1.0])
        np.testing.assert_allclose(params.preference, [0.5, 0.5])

    def test_matrix_consistent_with_function(self):
        params = ICParameters(0.3, [1.0, 3.0], [10.0, 20.0])
        np.testing.assert_allclose(
            params.matrix(), simplified_ic_matrix(0.3, [10.0, 20.0], [1.0, 3.0])
        )

    def test_dimension_mismatch(self):
        with pytest.raises(ShapeError):
            ICParameters(0.3, [1.0, 1.0], [1.0, 1.0, 1.0])


class TestModelClasses:
    def test_simplified_series_shape(self):
        model = SimplifiedICModel(0.25, [1.0, 2.0, 3.0], nodes=["a", "b", "c"])
        series = model.series(np.ones((5, 3)), bin_seconds=60.0)
        assert series.n_timesteps == 5
        assert series.nodes == ("a", "b", "c")
        assert series.bin_seconds == 60.0

    def test_general_model_series(self):
        model = GeneralICModel(np.full((2, 2), 0.4), [1.0, 1.0])
        series = model.series(np.ones((3, 2)))
        assert series.n_timesteps == 3

    def test_stable_f_model_requires_matching_series(self):
        model = StableFICModel(0.25)
        with pytest.raises(ShapeError):
            model.series(np.ones((3, 2)), np.ones((3, 3)))

    def test_time_varying_model_series(self):
        model = TimeVaryingICModel(nodes=["a", "b"])
        series = model.series([0.2, 0.3], np.ones((2, 2)), np.ones((2, 2)) / 2)
        assert series.n_timesteps == 2

    def test_time_varying_length_mismatch(self):
        model = TimeVaryingICModel()
        with pytest.raises(ShapeError):
            model.series([0.2], np.ones((2, 2)), np.ones((2, 2)))

    def test_stable_fp_dof_method(self):
        model = StableFPICModel(0.25, np.ones(4))
        assert model.degrees_of_freedom(10) == degrees_of_freedom("stable-fP", 4, 10)


class TestDegreesOfFreedom:
    """The Section 5.1 formulas, verbatim."""

    @pytest.mark.parametrize(
        "model, expected",
        [
            ("gravity", 2 * 22 * 2016 - 1),
            ("time-varying", 3 * 22 * 2016),
            ("stable-f", 2 * 22 * 2016 + 1),
            ("stable-fP", 22 * 2016 + 22 + 1),
        ],
    )
    def test_geant_week_values(self, model, expected):
        assert degrees_of_freedom(model, 22, 2016) == expected

    def test_stable_fp_has_fewest_inputs(self):
        n, t = 23, 672
        dof = {m: degrees_of_freedom(m, n, t) for m in ("gravity", "time-varying", "stable-f", "stable-fP")}
        assert dof["stable-fP"] < dof["gravity"] < dof["stable-f"] < dof["time-varying"]

    def test_unknown_model(self):
        with pytest.raises(ValidationError):
            degrees_of_freedom("bogus", 10, 10)

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            degrees_of_freedom("gravity", 0, 5)

"""Streaming pipeline tests: chunk protocol, bit-identity, equivalence, memory.

The contract under test is the one the streaming data plane advertises:

* same-seed chunked synthesis is **bit-identical** to the in-memory cube,
* the streaming estimator produces the same numbers as the cube path for the
  fig11/12/13 scenario shapes (within float reduction order, far inside the
  1e-12 budget), and
* peak memory is bounded by the chunk size, not the series length
  (asserted via ``tracemalloc``).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.fitting import fit_stable_fp
from repro.core.gravity import gravity_series
from repro.core.metrics import rel_l2_spatial_error, rel_l2_temporal_error
from repro.core.streaming import (
    SeriesAccumulator,
    fit_stable_fp_streaming,
    streaming_gravity_errors,
    streaming_rel_l2_spatial_error,
    streaming_rel_l2_temporal_error,
)
from repro.errors import ValidationError
from repro.estimation.linear_system import (
    simulate_link_loads,
    simulate_link_loads_streaming,
)
from repro.estimation.pipeline import TMEstimator
from repro.scenarios import Scenario, ScenarioRunner
from repro.streaming import (
    ArrayChunkStream,
    CachedChunkStream,
    FunctionChunkStream,
    as_chunk_stream,
    default_chunk_bins,
    iter_chunks,
    zip_chunks,
)
from repro.synthesis.datasets import load_dataset, open_dataset_stream
from repro.synthesis.generator import ICTMGenerator


# ---------------------------------------------------------------------------
# the chunk protocol
# ---------------------------------------------------------------------------

class TestChunkProtocol:
    def test_array_stream_yields_views_covering_all_bins(self):
        values = np.random.default_rng(0).random((20, 3, 3))
        stream = ArrayChunkStream(values, bin_seconds=60.0, chunk_bins=7)
        chunks = list(stream.chunks())
        assert [t0 for t0, _ in chunks] == [0, 7, 14]
        assert [block.shape[0] for _, block in chunks] == [7, 7, 6]
        assert np.array_equal(np.concatenate([b for _, b in chunks]), values)
        assert chunks[0][1].base is not None  # views, not copies

    def test_adapter_accepts_cube_series_and_stream(self):
        values = np.random.default_rng(1).random((10, 4, 4))
        from repro.core.traffic_matrix import TrafficMatrixSeries

        series = TrafficMatrixSeries(values, bin_seconds=900.0)
        for source in (values, series, ArrayChunkStream(series)):
            stream = as_chunk_stream(source, chunk_bins=3)
            assert stream.n_bins == 10
            assert stream.chunk_bins == 3
        assert as_chunk_stream(series).bin_seconds == 900.0

    def test_adapter_rechunks_array_streams_only(self):
        values = np.random.default_rng(2).random((8, 3, 3))
        rechunked = as_chunk_stream(ArrayChunkStream(values, chunk_bins=4), chunk_bins=2)
        assert rechunked.chunk_bins == 2

        generative = FunctionChunkStream(
            lambda chunk: iter([(0, values)]),
            n_bins=8,
            nodes=[f"n{i}" for i in range(3)],
            bin_seconds=300.0,
            chunk_bins=8,
        )
        with pytest.raises(ValidationError, match="re-chunk"):
            as_chunk_stream(generative, chunk_bins=2)

    def test_function_stream_validates_coverage(self):
        nodes = ("a", "b")

        def gappy(chunk):
            yield 0, np.zeros((2, 2, 2))
            yield 5, np.zeros((2, 2, 2))  # skips bins 2-4

        stream = FunctionChunkStream(gappy, n_bins=7, nodes=nodes, bin_seconds=60.0, chunk_bins=2)
        with pytest.raises(ValidationError, match="skipped"):
            list(stream.chunks())

        def short(chunk):
            yield 0, np.zeros((2, 2, 2))

        stream = FunctionChunkStream(short, n_bins=7, nodes=nodes, bin_seconds=60.0, chunk_bins=2)
        with pytest.raises(ValidationError, match="ended early"):
            list(stream.chunks())

    def test_zip_chunks_requires_matching_boundaries(self):
        a = ArrayChunkStream(np.zeros((6, 2, 2)), chunk_bins=2)
        b = ArrayChunkStream(np.ones((6, 2, 2)), chunk_bins=2)
        zipped = list(zip_chunks(a, b))
        assert [t0 for t0, _ in zipped] == [0, 2, 4]
        mismatched = ArrayChunkStream(np.ones((6, 2, 2)), chunk_bins=4)
        with pytest.raises(ValidationError, match="chunk boundaries"):
            list(zip_chunks(a, mismatched))
        with pytest.raises(ValidationError, match="n_bins"):
            list(zip_chunks(a, ArrayChunkStream(np.ones((5, 2, 2)))))

    def test_zip_chunks_refuses_silent_truncation_naming_streams(self):
        class TruncatedStream:
            """Claims 6 bins but its iterator stops after one 3-bin chunk."""

            n_bins = 6

            def chunks(self):
                yield 0, np.zeros((3, 2, 2))

        a = ArrayChunkStream(np.zeros((6, 2, 2)), chunk_bins=3)
        with pytest.raises(ValidationError) as excinfo:
            list(zip_chunks(a, TruncatedStream()))
        message = str(excinfo.value)
        assert "refusing to truncate" in message
        assert "TruncatedStream" in message  # the stream that ran dry
        assert "ArrayChunkStream" in message  # the stream left yielding

    def test_default_chunk_bins_scales_down_with_network_size(self):
        assert default_chunk_bins(10) > default_chunk_bins(100) >= 1

    def test_iter_chunks_materialize_and_marginals(self):
        values = np.random.default_rng(3).random((9, 3, 3))
        stream = as_chunk_stream(values, chunk_bins=4)
        assert np.array_equal(
            np.concatenate([b for _, b in iter_chunks(values, chunk_bins=4)]), values
        )
        assert np.array_equal(stream.materialize().values, values)
        ingress, egress = stream.marginals()
        assert np.array_equal(ingress, values.sum(axis=2))
        assert np.array_equal(egress, values.sum(axis=1))


class TestCachedChunkStreamConcurrency:
    """Interleaved multi-pass readers and budgets below one chunk."""

    def _counting_stream(self, n_bins=12, chunk_bins=4):
        values = np.random.default_rng(9).random((n_bins, 3, 3))
        passes = {"count": 0}

        def factory(resolved):
            passes["count"] += 1
            for start in range(0, n_bins, resolved):
                yield start, values[start:start + resolved].copy()

        stream = FunctionChunkStream(
            factory, n_bins=n_bins, nodes=("a", "b", "c"), bin_seconds=60.0,
            chunk_bins=chunk_bins,
        )
        return stream, values, passes

    def test_interleaved_passes_see_complete_duplicate_free_sequences(self):
        stream, values, passes = self._counting_stream()
        cached = CachedChunkStream(stream, budget_bytes=1 << 30)
        first = cached.chunks()
        collected_first = [next(first)]  # first pass is mid-flight...
        second = list(cached.chunks())  # ...when a second pass runs to completion
        collected_first.extend(first)
        for chunks in (collected_first, second):
            assert [t0 for t0, _ in chunks] == [0, 4, 8]  # complete, no duplicates
            assert np.array_equal(np.concatenate([b for _, b in chunks]), values)
        # The cache held only what the filling pass appended — no duplicate
        # entries from the concurrent reader — and now serves passes alone.
        assert cached.cached_bins == 12
        third = list(cached.chunks())
        assert np.array_equal(np.concatenate([b for _, b in third]), values)
        assert passes["count"] == 2  # third pass never touched the inner stream

    def test_budget_below_one_chunk_caches_nothing_but_stays_correct(self):
        stream, values, passes = self._counting_stream()
        chunk_bytes = values[:4].nbytes
        cached = CachedChunkStream(stream, budget_bytes=chunk_bytes - 1)
        for _ in range(2):
            total = np.concatenate([b for _, b in cached.chunks()])
            assert np.array_equal(total, values)
        assert cached.cached_bins == 0
        assert passes["count"] == 2  # every pass regenerates from the source


# ---------------------------------------------------------------------------
# chunked synthesis bit-identity
# ---------------------------------------------------------------------------

class TestSynthesisBitIdentity:
    def test_generator_chunks_match_cube_for_any_chunking(self):
        generator = ICTMGenerator([f"n{i}" for i in range(8)], seed=5)
        series, _ = generator.generate(100)
        plan = generator.plan(100)
        for chunk_bins in (1, 13, 100):
            blocks = [b for _, b in generator.iter_chunks(plan, chunk_bins=chunk_bins)]
            assert np.array_equal(np.concatenate(blocks), series.values)

    def test_generator_mid_stream_slice_matches_cube_slice(self):
        generator = ICTMGenerator([f"n{i}" for i in range(6)], seed=9)
        series, _ = generator.generate(80)
        plan = generator.plan(80)
        blocks = [
            b for _, b in generator.iter_chunks(plan, chunk_bins=7, start_bin=33, stop_bin=71)
        ]
        assert np.array_equal(np.concatenate(blocks), series.values[33:71])
        # A second pass reuses cached RNG state and must be identical.
        again = [
            b for _, b in generator.iter_chunks(plan, chunk_bins=11, start_bin=33, stop_bin=71)
        ]
        assert np.array_equal(np.concatenate(again), series.values[33:71])

    @pytest.mark.parametrize("name,weeks,bins", [("geant", 2, 36), ("totem", 3, 40)])
    def test_week_streams_bit_identical_to_cube_weeks(self, name, weeks, bins):
        data = load_dataset(name, n_weeks=weeks, bins_per_week=bins)
        stream = open_dataset_stream(name, n_weeks=weeks, bins_per_week=bins)
        assert stream.nodes == data.nodes
        assert stream.bin_seconds == data.bin_seconds
        for week_index in range(weeks):
            streamed = stream.week_stream(week_index, chunk_bins=7).materialize()
            assert np.array_equal(streamed.values, data.week(week_index).values)

    def test_full_stream_matches_concatenated_weeks_across_boundaries(self):
        # Chunk length of 17 straddles the 40-bin week boundary, exercising
        # anomaly application on partial weeks (totem injects anomalies).
        data = load_dataset("totem", n_weeks=2, bins_per_week=40)
        stream = open_dataset_stream("totem", n_weeks=2, bins_per_week=40)
        full = stream.full_stream(chunk_bins=17).materialize()
        assert np.array_equal(full.values, data.full_series().values)

    def test_trimmed_week_stream_matches_cube_prefix(self):
        data = load_dataset("geant", n_weeks=1, bins_per_week=48)
        stream = open_dataset_stream("geant", n_weeks=1, bins_per_week=48)
        trimmed = stream.week_stream(0, chunk_bins=5, max_bins=13).materialize()
        assert np.array_equal(trimmed.values, data.week(0).values[:13])

    def test_ground_truths_match_cube_path(self):
        data = load_dataset("totem", n_weeks=2, bins_per_week=24)
        stream = open_dataset_stream("totem", n_weeks=2, bins_per_week=24)
        for week_index in range(2):
            cube_truth = data.ground_truths[week_index]
            stream_truth = stream.ground_truths[week_index]
            assert np.array_equal(cube_truth.activity, stream_truth.activity)
            assert np.array_equal(cube_truth.preference, stream_truth.preference)
            assert np.array_equal(
                cube_truth.forward_fraction_matrix, stream_truth.forward_fraction_matrix
            )

    def test_unknown_or_unstreamable_dataset_rejected(self):
        with pytest.raises(Exception):
            open_dataset_stream("no-such-dataset", n_weeks=1)

    def test_streamed_measurements_match_materialised_system(self):
        data = load_dataset("geant", n_weeks=1, bins_per_week=36)
        stream = open_dataset_stream("geant", n_weeks=1, bins_per_week=36)
        week = data.week(0)
        system_mem = simulate_link_loads(data.topology, week, noise_std=0.01, seed=3)
        system_str = simulate_link_loads_streaming(
            stream.topology, stream.week_stream(0, chunk_bins=7), noise_std=0.01, seed=3
        )
        assert np.array_equal(system_mem.ingress, system_str.ingress)
        assert np.array_equal(system_mem.egress, system_str.egress)
        # Chunked GEMM may differ from the full product by 1 ulp.
        np.testing.assert_allclose(
            system_mem.link_loads, system_str.link_loads, rtol=1e-13
        )


# ---------------------------------------------------------------------------
# accumulators and streaming reductions
# ---------------------------------------------------------------------------

class TestStreamingReductions:
    @pytest.fixture(scope="class")
    def week_and_stream(self):
        data = load_dataset("geant", n_weeks=1, bins_per_week=48)
        stream = open_dataset_stream("geant", n_weeks=1, bins_per_week=48)
        return data.week(0), stream.week_stream(0, chunk_bins=7)

    def test_series_accumulator_matches_direct_statistics(self, week_and_stream):
        week, stream = week_and_stream
        accumulator = SeriesAccumulator.from_source(stream)
        assert accumulator.n_bins == week.n_timesteps
        assert np.array_equal(accumulator.ingress, week.ingress)
        assert np.array_equal(accumulator.egress, week.egress)
        np.testing.assert_allclose(
            accumulator.mean_matrix(), week.values.mean(axis=0), rtol=1e-12
        )
        np.testing.assert_allclose(
            accumulator.od_variance(), week.values.var(axis=0), rtol=1e-9
        )
        np.testing.assert_allclose(
            accumulator.bin_norms, np.sqrt((week.values**2).sum(axis=(1, 2))), rtol=1e-12
        )

    def test_streaming_temporal_error_is_exact(self, week_and_stream):
        week, stream = week_and_stream
        gravity = gravity_series(week)
        expected = rel_l2_temporal_error(week, gravity)
        streamed = streaming_rel_l2_temporal_error(
            stream, ArrayChunkStream(gravity, chunk_bins=stream.chunk_bins)
        )
        assert np.array_equal(expected, streamed)
        assert np.array_equal(expected, streaming_gravity_errors(stream))

    def test_streaming_spatial_error_matches(self, week_and_stream):
        week, stream = week_and_stream
        gravity = gravity_series(week)
        expected = rel_l2_spatial_error(week.values, np.asarray(gravity.values))
        streamed = streaming_rel_l2_spatial_error(
            stream, ArrayChunkStream(gravity, chunk_bins=stream.chunk_bins)
        )
        np.testing.assert_allclose(expected, streamed, rtol=1e-12)

    def test_streaming_fit_matches_in_memory_fit(self, week_and_stream):
        week, stream = week_and_stream
        fit_mem = fit_stable_fp(week)
        fit_str = fit_stable_fp_streaming(stream)
        assert fit_str.model == "stable-fP"
        assert fit_str.converged == fit_mem.converged
        assert len(fit_str.objective_history) == len(fit_mem.objective_history)
        np.testing.assert_allclose(
            fit_str.forward_fraction, fit_mem.forward_fraction, rtol=1e-9
        )
        np.testing.assert_allclose(fit_str.preference, fit_mem.preference, atol=1e-10)
        np.testing.assert_allclose(fit_str.errors, fit_mem.errors, atol=1e-10)

    def test_fit_stable_fp_accepts_streams_via_adapter(self, week_and_stream):
        _, stream = week_and_stream
        fit = fit_stable_fp(stream)
        assert fit.model == "stable-fP"
        with pytest.raises(ValidationError, match="refine"):
            fit_stable_fp(stream, refine=True)


# ---------------------------------------------------------------------------
# streaming scenarios: fig11/12/13 equivalence
# ---------------------------------------------------------------------------

class TestStreamingScenarios:
    # The fig11/12/13 scenario shapes: measured (6.1), stable_fp (6.2),
    # stable_f (6.3), each against the gravity baseline.
    @pytest.mark.parametrize("prior", ["measured", "stable_fp", "stable_f"])
    def test_streamed_errors_match_in_memory_within_1e12(self, prior):
        base = Scenario(dataset="totem", prior=prior, bins_per_week=40, max_bins=20)
        runner = ScenarioRunner()
        in_memory = runner.run(base)
        streamed = runner.run(base.replace(stream=True, chunk_bins=7))
        np.testing.assert_allclose(streamed.errors, in_memory.errors, atol=1e-12)
        np.testing.assert_allclose(
            streamed.prior_errors, in_memory.prior_errors, atol=1e-12
        )
        np.testing.assert_allclose(
            streamed.baseline_errors, in_memory.baseline_errors, atol=1e-12
        )
        np.testing.assert_allclose(
            streamed.improvement, in_memory.improvement, atol=1e-8
        )
        assert streamed.estimate is None
        assert streamed.timing["chunk_bins"] == 7

    def test_streamed_gravity_scenario_without_baseline(self):
        scenario = Scenario(
            dataset="geant", prior="gravity", bins_per_week=36, max_bins=12,
            stream=True, chunk_bins=5,
        )
        runner = ScenarioRunner(baseline_prior=None)
        result = runner.run(scenario)
        reference = ScenarioRunner(baseline_prior=None).run(scenario.replace(stream=False))
        np.testing.assert_allclose(result.errors, reference.errors, atol=1e-12)
        assert result.improvement is None

    def test_streaming_rejects_unstreamable_prior(self, monkeypatch):
        from repro.registry import PRIORS

        if "cube_only" not in PRIORS:
            PRIORS.register(
                "cube_only", lambda context: context.target, description="test-only prior"
            )
        scenario = Scenario(
            dataset="geant", prior="cube_only", bins_per_week=36, max_bins=6, stream=True
        )
        with pytest.raises(ValidationError, match="no streaming builder"):
            ScenarioRunner(baseline_prior=None).run(scenario)

    def test_streaming_rejects_shipped_dataset(self):
        scenario = Scenario(dataset="geant", prior="gravity", stream=True)
        with pytest.raises(ValidationError, match="dataset=None"):
            ScenarioRunner().run(scenario, dataset=object())

    def test_estimate_stream_matches_estimate_bitwise(self):
        data = load_dataset("geant", n_weeks=1, bins_per_week=36)
        week = data.week(0)
        system = simulate_link_loads(data.topology, week, noise_std=0.01, seed=0)
        from repro.core.priors import GravityPrior

        prior = GravityPrior().series(
            system.ingress, system.egress, nodes=week.nodes, bin_seconds=week.bin_seconds
        )
        estimator = TMEstimator()
        reference = estimator.estimate(system, prior, ground_truth=week)
        streamed = estimator.estimate_stream(
            system,
            ArrayChunkStream(prior, chunk_bins=7),
            ground_truth_stream=ArrayChunkStream(week, chunk_bins=7),
            collect_estimate=True,
        )
        assert np.array_equal(reference.errors, streamed.errors)
        assert np.array_equal(reference.estimate.values, streamed.estimate.values)
        no_truth = estimator.estimate_stream(system, ArrayChunkStream(prior, chunk_bins=7))
        assert no_truth.errors is None and no_truth.estimate is None


# ---------------------------------------------------------------------------
# bounded peak memory
# ---------------------------------------------------------------------------

def _traced_peak(func) -> int:
    tracemalloc.start()
    try:
        func()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


class TestBoundedMemory:
    def test_streamed_synthesis_peak_is_chunk_sized_not_series_sized(self):
        bins = 288
        stream = open_dataset_stream("geant", n_weeks=1, bins_per_week=bins, chunk_bins=8)
        cube_bytes = bins * len(stream.nodes) ** 2 * 8
        peak = _traced_peak(lambda: stream.week_stream(0).marginals())
        assert peak < cube_bytes / 3

    def test_streaming_scenario_peak_below_in_memory_and_flat_in_t(self):
        def run(bins: int, stream: bool) -> None:
            scenario = Scenario(
                dataset="geant",
                prior="stable_f",
                bins_per_week=bins,
                max_bins=bins,
                stream=stream,
                chunk_bins=8 if stream else None,
                target_week=0,
                calibration_week=0,
            )
            ScenarioRunner(baseline_prior=None).run(scenario)

        # Synthesis caches would hide the second run's allocations; clear them.
        from repro.synthesis import datasets as datasets_module

        def fresh(bins: int, stream: bool):
            datasets_module.load_dataset.cache_clear()
            datasets_module._open_stream_core.cache_clear()
            return _traced_peak(lambda: run(bins, stream))

        in_memory_peak = fresh(192, stream=False)
        streamed_peak = fresh(192, stream=True)
        assert streamed_peak < in_memory_peak / 3

        # Doubling T must not double the streamed peak: the n^2 working set
        # is O(chunk); only O(T n) marginal state grows.
        streamed_small = fresh(96, stream=True)
        assert streamed_peak < 1.6 * streamed_small

"""Tests for the estimation substrate: link loads, tomogravity, IPF, entropy, pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gravity import gravity_series
from repro.core.metrics import rel_l2_temporal_error
from repro.core.priors import GravityPrior
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ShapeError, ValidationError
from repro.estimation.entropy import entropy_estimate
from repro.estimation.ipf import iterative_proportional_fitting
from repro.estimation.linear_system import LinkLoadSystem, simulate_link_loads
from repro.estimation.pipeline import TMEstimator
from repro.estimation.tomogravity import tomogravity_estimate
from repro.topology.library import abilene_topology
from repro.topology.routing import build_routing_matrix


@pytest.fixture(scope="module")
def abilene_world():
    """A small ground-truth series on the Abilene topology plus its measurements."""
    topology = abilene_topology()
    rng = np.random.default_rng(42)
    n = topology.n_nodes
    values = rng.lognormal(np.log(1e6), 0.8, (6, n, n))
    series = TrafficMatrixSeries(values, topology.nodes)
    system = simulate_link_loads(topology, series, noise_std=0.0)
    return topology, series, system


class TestSimulateLinkLoads:
    def test_link_loads_match_routing_matrix(self, abilene_world):
        topology, series, system = abilene_world
        manual = series.to_vectors() @ system.routing.matrix.T
        np.testing.assert_allclose(system.link_loads, manual)

    def test_marginals_match_series(self, abilene_world):
        _, series, system = abilene_world
        np.testing.assert_allclose(system.ingress, series.ingress)
        np.testing.assert_allclose(system.egress, series.egress)

    def test_node_mismatch_rejected(self, abilene_world):
        topology, series, _ = abilene_world
        renamed = TrafficMatrixSeries(series.values, [f"x{i}" for i in range(series.n_nodes)])
        with pytest.raises(ValidationError):
            simulate_link_loads(topology, renamed)

    def test_noise_changes_measurements_but_not_much(self, abilene_world):
        topology, series, clean = abilene_world
        noisy = simulate_link_loads(topology, series, noise_std=0.05, seed=1)
        assert not np.allclose(noisy.link_loads, clean.link_loads)
        relative = np.abs(noisy.link_loads - clean.link_loads) / np.maximum(clean.link_loads, 1.0)
        assert np.median(relative) < 0.2

    def test_negative_noise_rejected(self, abilene_world):
        topology, series, _ = abilene_world
        with pytest.raises(ValidationError):
            simulate_link_loads(topology, series, noise_std=-0.1)

    def test_augmented_system_consistency(self, abilene_world):
        _, series, system = abilene_world
        b, z = system.augmented_system()
        np.testing.assert_allclose(b @ series.to_vectors()[0], z[0])

    def test_link_load_system_shape_validation(self, abilene_world):
        _, series, system = abilene_world
        with pytest.raises(ShapeError):
            LinkLoadSystem(
                routing=system.routing,
                link_loads=system.link_loads,
                ingress=system.ingress[:, :-1],
                egress=system.egress,
            )


class TestTomogravity:
    def test_returns_prior_when_already_consistent(self, abilene_world):
        _, series, system = abilene_world
        truth = series.to_vectors()[0]
        refined = tomogravity_estimate(truth, system.routing.matrix, system.link_loads[0])
        np.testing.assert_allclose(refined, truth, rtol=1e-6, atol=1e-3)

    def test_improves_gravity_prior(self, abilene_world):
        _, series, system = abilene_world
        b, z = system.augmented_system()
        prior = gravity_series(series).to_vectors()[0]
        truth = series.to_vectors()[0]
        refined = tomogravity_estimate(prior, b, z[0])
        assert np.linalg.norm(refined - truth) <= np.linalg.norm(prior - truth) + 1e-6

    def test_satisfies_observations(self, abilene_world):
        _, series, system = abilene_world
        prior = gravity_series(series).to_vectors()[0]
        refined = tomogravity_estimate(prior, system.routing.matrix, system.link_loads[0])
        residual = system.routing.matrix @ refined - system.link_loads[0]
        scale = np.maximum(system.link_loads[0], 1.0)
        assert np.max(np.abs(residual) / scale) < 0.05

    def test_nonnegative_output(self, abilene_world):
        _, series, system = abilene_world
        prior = np.zeros(series.n_nodes**2)
        refined = tomogravity_estimate(prior, system.routing.matrix, system.link_loads[0])
        assert np.all(refined >= 0)

    def test_batch_mode(self, abilene_world):
        _, series, system = abilene_world
        priors = gravity_series(series).to_vectors()
        refined = tomogravity_estimate(priors, system.routing.matrix, system.link_loads)
        assert refined.shape == priors.shape

    def test_shape_errors(self):
        with pytest.raises(ShapeError):
            tomogravity_estimate(np.ones(4), np.ones((3, 5)), np.ones(3))
        with pytest.raises(ShapeError):
            tomogravity_estimate(np.ones(4), np.ones((3, 4)), np.ones(2))


class TestIPF:
    def test_matches_marginals(self):
        rng = np.random.default_rng(1)
        seed_matrix = rng.random((5, 5))
        rows = rng.random(5) * 10
        cols = rng.permutation(rows)  # same grand total
        fitted = iterative_proportional_fitting(seed_matrix, rows, cols)
        np.testing.assert_allclose(fitted.sum(axis=1), rows, rtol=1e-5)
        np.testing.assert_allclose(fitted.sum(axis=0), cols, rtol=1e-5)

    def test_preserves_structural_zeros(self):
        seed_matrix = np.array([[0.0, 1.0], [1.0, 1.0]])
        fitted = iterative_proportional_fitting(seed_matrix, np.array([2.0, 3.0]), np.array([2.0, 3.0]))
        assert fitted[0, 0] == 0.0

    def test_reconciles_inconsistent_totals(self):
        seed_matrix = np.ones((3, 3))
        rows = np.array([10.0, 10.0, 10.0])
        cols = np.array([5.0, 5.0, 5.0])  # grand totals disagree by 2x
        fitted = iterative_proportional_fitting(seed_matrix, rows, cols)
        assert fitted.sum() == pytest.approx(0.5 * (rows.sum() + cols.sum()), rel=1e-6)

    def test_zero_targets_give_zero_matrix(self):
        fitted = iterative_proportional_fitting(np.ones((2, 2)), np.zeros(2), np.zeros(2))
        np.testing.assert_allclose(fitted, 0.0)

    def test_empty_seed_row_with_positive_target(self):
        seed_matrix = np.array([[0.0, 0.0], [1.0, 1.0]])
        fitted = iterative_proportional_fitting(seed_matrix, np.array([4.0, 4.0]), np.array([4.0, 4.0]))
        assert fitted[0].sum() == pytest.approx(4.0, rel=1e-5)

    def test_input_validation(self):
        with pytest.raises(ShapeError):
            iterative_proportional_fitting(np.ones((2, 3)), np.ones(2), np.ones(2))
        with pytest.raises(ValidationError):
            iterative_proportional_fitting(-np.ones((2, 2)), np.ones(2), np.ones(2))
        with pytest.raises(ValidationError):
            iterative_proportional_fitting(np.ones((2, 2)), -np.ones(2), np.ones(2))


class TestEntropyEstimate:
    def test_reduces_constraint_residual(self, abilene_world):
        _, series, system = abilene_world
        prior = gravity_series(series).to_vectors()[0]
        refined = entropy_estimate(prior, system.routing.matrix, system.link_loads[0])
        before = np.linalg.norm(system.routing.matrix @ prior - system.link_loads[0])
        after = np.linalg.norm(system.routing.matrix @ refined - system.link_loads[0])
        assert after < before

    def test_keeps_consistent_prior(self, abilene_world):
        _, series, system = abilene_world
        truth = series.to_vectors()[0]
        refined = entropy_estimate(truth, system.routing.matrix, system.link_loads[0])
        np.testing.assert_allclose(refined, truth, rtol=0.05)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            entropy_estimate(np.ones(4), np.ones((3, 5)), np.ones(3))


class TestPipeline:
    def test_estimate_improves_on_prior(self, abilene_world):
        _, series, system = abilene_world
        prior = GravityPrior().series(system.ingress, system.egress, nodes=series.nodes)
        result = TMEstimator().estimate(system, prior, ground_truth=series)
        assert result.mean_error <= float(np.mean(result.prior_errors)) + 1e-9

    def test_estimate_matches_marginals(self, abilene_world):
        _, series, system = abilene_world
        prior = GravityPrior().series(system.ingress, system.egress, nodes=series.nodes)
        result = TMEstimator().estimate(system, prior)
        np.testing.assert_allclose(result.estimate.ingress, system.ingress, rtol=1e-3)
        np.testing.assert_allclose(result.estimate.egress, system.egress, rtol=1e-3)

    def test_errors_unavailable_without_ground_truth(self, abilene_world):
        _, series, system = abilene_world
        prior = GravityPrior().series(system.ingress, system.egress, nodes=series.nodes)
        result = TMEstimator().estimate(system, prior)
        with pytest.raises(ValidationError):
            _ = result.mean_error

    def test_compare_priors_runs_all(self, abilene_world):
        _, series, system = abilene_world
        prior = GravityPrior().series(system.ingress, system.egress, nodes=series.nodes)
        results = TMEstimator().compare_priors(system, {"a": prior, "b": prior}, series)
        assert set(results) == {"a", "b"}
        np.testing.assert_allclose(results["a"].errors, results["b"].errors)

    def test_prior_length_mismatch_rejected(self, abilene_world):
        _, series, system = abilene_world
        prior = GravityPrior().series(system.ingress[:-1], system.egress[:-1], nodes=series.nodes)
        with pytest.raises(ValidationError):
            TMEstimator().estimate(system, prior)

    def test_entropy_method_selectable(self, abilene_world):
        _, series, system = abilene_world
        short_series = series[:1]
        short_system = simulate_link_loads(abilene_topology(), short_series, noise_std=0.0)
        prior = GravityPrior().series(short_system.ingress, short_system.egress, nodes=series.nodes)
        result = TMEstimator(method="entropy").estimate(short_system, prior, ground_truth=short_series)
        assert np.all(np.isfinite(result.errors))

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError):
            TMEstimator(method="magic")

    def test_improvement_over(self, abilene_world):
        _, series, system = abilene_world
        prior = GravityPrior().series(system.ingress, system.egress, nodes=series.nodes)
        result = TMEstimator().estimate(system, prior, ground_truth=series)
        improvement = result.improvement_over(result)
        np.testing.assert_allclose(improvement, 0.0)


class TestSparseAugmentedSystem:
    """The stacked observation operator built without densifying the routing matrix."""

    def test_sparse_operator_equals_dense(self, abilene_world):
        _, _, system = abilene_world
        dense_b, dense_z = system.augmented_system()
        sparse_b, sparse_z = system.augmented_system(as_sparse=True)
        from scipy import sparse as scipy_sparse

        assert scipy_sparse.issparse(sparse_b)
        assert np.array_equal(dense_b, sparse_b.toarray())
        assert np.array_equal(dense_z, sparse_z)

    def test_tomogravity_accepts_sparse_operator(self, abilene_world):
        _, series, system = abilene_world
        dense_b, z = system.augmented_system()
        sparse_b, _ = system.augmented_system(as_sparse=True)
        priors = series.to_vectors()
        dense_estimates = tomogravity_estimate(priors, dense_b, z)
        sparse_estimates = tomogravity_estimate(priors, sparse_b, z)
        np.testing.assert_allclose(sparse_estimates, dense_estimates, rtol=1e-8, atol=1e-3)
        single = tomogravity_estimate(priors[0], sparse_b, z[0])
        np.testing.assert_allclose(single, dense_estimates[0], rtol=1e-8, atol=1e-3)

    def test_estimator_sparse_mode_matches_dense(self, abilene_world):
        topology, series, system = abilene_world
        prior = GravityPrior().series(
            system.ingress, system.egress, nodes=series.nodes, bin_seconds=series.bin_seconds
        )
        dense_result = TMEstimator(use_sparse_system=False).estimate(
            system, prior, ground_truth=series
        )
        sparse_result = TMEstimator(use_sparse_system=True).estimate(
            system, prior, ground_truth=series
        )
        np.testing.assert_allclose(sparse_result.errors, dense_result.errors, rtol=1e-6)

    def test_auto_mode_keeps_paper_scale_topologies_dense(self, abilene_world):
        _, _, system = abilene_world
        from repro.estimation.pipeline import SPARSE_SYSTEM_MIN_NODES

        estimator = TMEstimator()
        assert system.n_nodes < SPARSE_SYSTEM_MIN_NODES
        assert estimator._resolve_sparse(system) is False
        assert TMEstimator(use_sparse_system=True)._resolve_sparse(system) is True
        # The entropy method always runs dense.
        assert TMEstimator(method="entropy", use_sparse_system=True)._resolve_sparse(system) is False

"""Equivalence tests for the batched execution engine.

Every batched kernel introduced by the time-vectorised refactor must be
*bit-for-bit* identical to the per-bin (or per-entry) reference loop it
replaced: these property-based tests generate random inputs with hypothesis
and compare against straightforward reference implementations written the
way the seed code computed things, using ``np.array_equal`` (no tolerance).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.gravity import gravity_matrix, gravity_series_values
from repro.core.ic_model import (
    general_ic_matrix,
    general_ic_series,
    simplified_ic_matrix,
    simplified_ic_series,
    time_varying_ic_series,
)
from repro.core.priors import StableFPrior
from repro.estimation.ipf import (
    iterative_proportional_fitting,
    iterative_proportional_fitting_series,
)
from repro.estimation.linear_system import simulate_link_loads
from repro.estimation.tomogravity import tomogravity_estimate
from repro.errors import ShapeError, ValidationError
from repro.synthesis.datasets import load_dataset
from repro.topology.library import random_topology

# -- strategies -------------------------------------------------------------

def assert_bit_identical(actual: np.ndarray, expected: np.ndarray) -> None:
    """Bitwise equality: same shape and the exact same bytes (NaN-safe)."""
    actual = np.ascontiguousarray(actual)
    expected = np.ascontiguousarray(expected)
    assert actual.shape == expected.shape
    assert actual.tobytes() == expected.tobytes()


node_counts = st.integers(min_value=2, max_value=7)
bin_counts = st.integers(min_value=1, max_value=9)
forward_fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def nonneg_array(shape, min_value: float = 0.0, max_value: float = 1e6):
    return arrays(
        dtype=float,
        shape=shape,
        elements=st.floats(
            min_value=min_value, max_value=max_value, allow_nan=False, allow_infinity=False
        ),
    )


@st.composite
def series_inputs(draw):
    n = draw(node_counts)
    t = draw(bin_counts)
    forward = draw(forward_fractions)
    activity = draw(nonneg_array((t, n)))
    preference = draw(nonneg_array(n, min_value=1e-6, max_value=1.0))
    return forward, activity, preference


@st.composite
def time_varying_inputs(draw):
    n = draw(node_counts)
    t = draw(bin_counts)
    forward = draw(nonneg_array(t, max_value=1.0))
    activity = draw(nonneg_array((t, n)))
    preference = draw(nonneg_array((t, n), min_value=1e-6, max_value=1.0))
    return forward, activity, preference


# -- IC series kernels -------------------------------------------------------


@given(series_inputs())
@settings(max_examples=80, deadline=None)
def test_simplified_series_matches_per_bin_loop_bitwise(inputs):
    forward, activity, preference = inputs
    reference = np.stack(
        [simplified_ic_matrix(forward, activity[t], preference) for t in range(activity.shape[0])]
    )
    assert np.array_equal(simplified_ic_series(forward, activity, preference), reference)


@given(series_inputs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_general_series_matches_per_bin_loop_bitwise(inputs, seed):
    forward, activity, preference = inputs
    n = preference.shape[0]
    rng = np.random.default_rng(seed)
    f_matrix = rng.uniform(0.0, 1.0, size=(n, n))
    reference = np.stack(
        [general_ic_matrix(f_matrix, activity[t], preference) for t in range(activity.shape[0])]
    )
    assert np.array_equal(general_ic_series(f_matrix, activity, preference), reference)


@given(time_varying_inputs())
@settings(max_examples=80, deadline=None)
def test_time_varying_series_matches_per_bin_loop_bitwise(inputs):
    forward, activity, preference = inputs
    reference = np.stack(
        [
            simplified_ic_matrix(float(forward[t]), activity[t], preference[t])
            for t in range(activity.shape[0])
        ]
    )
    assert np.array_equal(time_varying_ic_series(forward, activity, preference), reference)


@given(time_varying_inputs(), forward_fractions)
@settings(max_examples=40, deadline=None)
def test_time_varying_series_scalar_f_matches_loop(inputs, forward):
    _, activity, preference = inputs
    reference = np.stack(
        [
            simplified_ic_matrix(forward, activity[t], preference[t])
            for t in range(activity.shape[0])
        ]
    )
    assert np.array_equal(time_varying_ic_series(forward, activity, preference), reference)


def test_time_varying_series_rejects_zero_preference_bin():
    activity = np.ones((2, 3))
    preference = np.array([[1.0, 1.0, 1.0], [0.0, 0.0, 0.0]])
    with pytest.raises(ValidationError):
        time_varying_ic_series(0.3, activity, preference)


def test_time_varying_series_rejects_mismatched_f_length():
    with pytest.raises(ShapeError):
        time_varying_ic_series(np.ones(3), np.ones((2, 3)), np.ones((2, 3)))


def test_kernel_chunking_boundary_is_seamless():
    """Results must not depend on where the cache-sized chunks split."""
    rng = np.random.default_rng(7)
    activity = rng.random((300, 40)) * 1e5
    preference = rng.random(40) + 1e-3
    reference = np.stack(
        [simplified_ic_matrix(0.25, activity[t], preference) for t in range(300)]
    )
    assert np.array_equal(simplified_ic_series(0.25, activity, preference), reference)


# -- gravity kernel ----------------------------------------------------------


@given(
    node_counts.flatmap(
        lambda n: st.tuples(nonneg_array((5, n)), nonneg_array((5, n)))
    )
)
@settings(max_examples=60, deadline=None)
def test_gravity_series_values_matches_per_bin_loop_bitwise(marginals):
    ingress, egress = marginals
    reference = np.stack(
        [gravity_matrix(ingress[t], egress[t]) for t in range(ingress.shape[0])]
    )
    assert np.array_equal(gravity_series_values(ingress, egress), reference)


# -- stable-f prior ----------------------------------------------------------


@given(
    node_counts.flatmap(
        lambda n: st.tuples(
            nonneg_array((4, n), min_value=1.0, max_value=1e6),
            nonneg_array((4, n), min_value=1.0, max_value=1e6),
        )
    ),
    st.floats(min_value=0.05, max_value=0.45),
)
@settings(max_examples=40, deadline=None)
def test_stable_f_prior_series_matches_seed_loop(marginals, forward):
    from repro.core.priors import stable_f_closed_form

    ingress, egress = marginals
    prior = StableFPrior(forward)
    activity, preference = stable_f_closed_form(forward, ingress, egress)
    reference = np.stack(
        [
            simplified_ic_matrix(forward, activity[t], preference[t])
            if preference[t].sum() > 0
            else np.zeros((ingress.shape[1], ingress.shape[1]))
            for t in range(ingress.shape[0])
        ]
    )
    series = prior.series(ingress, egress)
    assert np.array_equal(np.asarray(series.values), reference)


# -- batched estimation steps ------------------------------------------------


@pytest.fixture(scope="module")
def measurement_setup():
    data = load_dataset("geant", n_weeks=1, bins_per_week=12)
    week = data.week(0)
    system = simulate_link_loads(data.topology, week, noise_std=0.01, seed=5)
    return week, system


def test_tomogravity_batch_matches_per_bin_loop_bitwise(measurement_setup):
    week, system = measurement_setup
    matrix, observations = system.augmented_system()
    priors = week.to_vectors()
    reference = np.stack(
        [
            tomogravity_estimate(priors[t], matrix, observations[t])
            for t in range(priors.shape[0])
        ]
    )
    assert np.array_equal(tomogravity_estimate(priors, matrix, observations), reference)


@given(
    node_counts.flatmap(
        lambda n: st.tuples(
            nonneg_array((4, n, n), max_value=1e3),
            nonneg_array((4, n), max_value=1e3),
            nonneg_array((4, n), max_value=1e3),
        )
    ),
    st.integers(min_value=0, max_value=30),
)
@settings(max_examples=60, deadline=None)
def test_ipf_series_matches_per_bin_loop_bitwise(inputs, iterations):
    seeds, rows, cols = inputs
    reference = np.stack(
        [
            iterative_proportional_fitting(
                seeds[t], rows[t], cols[t], max_iterations=iterations
            )
            for t in range(seeds.shape[0])
        ]
    )
    batched = iterative_proportional_fitting_series(
        seeds, rows, cols, max_iterations=iterations
    )
    assert_bit_identical(batched, reference)


def test_ipf_series_freezes_converged_bins_like_the_loop(measurement_setup):
    """Bins converging at different iterations must stop exactly like the loop."""
    week, system = measurement_setup
    seeds = np.asarray(week.values, dtype=float)
    rng = np.random.default_rng(11)
    rows = system.ingress * rng.uniform(0.5, 2.0, size=system.ingress.shape)
    cols = system.egress * rng.uniform(0.5, 2.0, size=system.egress.shape)
    reference = np.stack(
        [
            iterative_proportional_fitting(seeds[t], rows[t], cols[t])
            for t in range(seeds.shape[0])
        ]
    )
    assert np.array_equal(
        iterative_proportional_fitting_series(seeds, rows, cols), reference
    )


# -- routing equivalence (sparse vs dense reference build) -------------------


def _dense_reference_routing(topology, *, ecmp: bool):
    """The seed-era dense triple-loop routing-matrix build."""
    from repro.topology.routing import shortest_paths

    paths = shortest_paths(topology, all_paths=ecmp)
    links = topology.links
    link_index = {link.key: r for r, link in enumerate(links)}
    n = topology.n_nodes
    matrix = np.zeros((len(links), n * n))
    for (origin, destination), node_paths in paths.items():
        if origin == destination:
            continue
        column = topology.node_index(origin) * n + topology.node_index(destination)
        share = 1.0 / len(node_paths)
        for node_path in node_paths:
            for hop_source, hop_target in zip(node_path[:-1], node_path[1:]):
                matrix[link_index[(hop_source, hop_target)], column] += share
    return matrix


@given(
    st.integers(min_value=2, max_value=9),
    st.integers(min_value=0, max_value=10_000),
    st.booleans(),
    st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_sparse_routing_matches_dense_reference(n_nodes, seed, ecmp, unit_weights):
    """Sparse CSR build equals the dense loop build exactly, incl. ECMP shares."""
    from repro.topology.routing import build_routing_matrix
    from repro.topology.topology import Topology

    topology = random_topology(n_nodes, seed=seed)
    if unit_weights:
        # Rebuild with all-equal weights to force equal-cost ties (ECMP splits).
        flattened = Topology(topology.name, topology.nodes)
        for link in topology.links:
            if not flattened.has_link(link.source, link.target):
                flattened.add_link(
                    type(link)(link.source, link.target, weight=1.0, capacity=link.capacity)
                )
        topology = flattened
    routing = build_routing_matrix(topology, ecmp=ecmp)
    reference = _dense_reference_routing(topology, ecmp=ecmp)
    assert np.array_equal(routing.matrix, reference)
    assert np.array_equal(routing.sparse.toarray(), reference)

"""Unit tests for the internal validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import _validation as v
from repro.errors import ShapeError, ValidationError


class TestAs1DArray:
    def test_accepts_list(self):
        result = v.as_1d_array([1, 2, 3], "x")
        assert result.dtype == float
        assert result.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_matrix(self):
        with pytest.raises(ShapeError):
            v.as_1d_array([[1, 2], [3, 4]], "x")

    def test_rejects_wrong_length(self):
        with pytest.raises(ShapeError):
            v.as_1d_array([1, 2, 3], "x", length=4)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            v.as_1d_array([1.0, float("nan")], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            v.as_1d_array([1.0, float("inf")], "x")


class TestAsSquareMatrix:
    def test_accepts_square(self):
        result = v.as_square_matrix([[1, 2], [3, 4]], "m")
        assert result.shape == (2, 2)

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            v.as_square_matrix([[1, 2, 3], [4, 5, 6]], "m")

    def test_rejects_wrong_size(self):
        with pytest.raises(ShapeError):
            v.as_square_matrix([[1, 2], [3, 4]], "m", size=3)

    def test_rejects_vector(self):
        with pytest.raises(ShapeError):
            v.as_square_matrix([1, 2, 3], "m")


class TestAsSeriesArray:
    def test_promotes_single_matrix(self):
        result = v.as_series_array([[1.0, 2.0], [3.0, 4.0]], "s")
        assert result.shape == (1, 2, 2)

    def test_accepts_stack(self):
        result = v.as_series_array(np.ones((5, 3, 3)), "s")
        assert result.shape == (5, 3, 3)

    def test_rejects_non_square_timesteps(self):
        with pytest.raises(ShapeError):
            v.as_series_array(np.ones((5, 3, 4)), "s")

    def test_rejects_wrong_node_count(self):
        with pytest.raises(ShapeError):
            v.as_series_array(np.ones((5, 3, 3)), "s", nodes=4)


class TestRequireHelpers:
    def test_nonnegative_clips_tiny_negatives(self):
        result = v.require_nonnegative(np.array([-1e-12, 1.0]), "x", tolerance=1e-9)
        assert result[0] == 0.0

    def test_nonnegative_rejects_real_negatives(self):
        with pytest.raises(ValidationError):
            v.require_nonnegative(np.array([-0.5, 1.0]), "x")

    def test_probability_bounds(self):
        assert v.require_probability(0.0, "p") == 0.0
        assert v.require_probability(1.0, "p") == 1.0
        with pytest.raises(ValidationError):
            v.require_probability(1.5, "p")
        with pytest.raises(ValidationError):
            v.require_probability(-0.1, "p")

    def test_positive_int(self):
        assert v.require_positive_int(3, "n") == 3
        with pytest.raises(ValidationError):
            v.require_positive_int(0, "n")
        with pytest.raises(ValidationError):
            v.require_positive_int(2.5, "n")

    def test_normalized(self):
        result = v.normalized(np.array([1.0, 3.0]), "p")
        assert result.sum() == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            v.normalized(np.zeros(3), "p")


class TestNodeNames:
    def test_defaults_generated(self):
        names = v.node_names(None, 3)
        assert names == ("node00", "node01", "node02")

    def test_wrong_count_rejected(self):
        with pytest.raises(ShapeError):
            v.node_names(["a", "b"], 3)

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            v.node_names(["a", "a", "b"], 3)

"""Tests for the pluggable array-API compute backend (repro.backend).

Three layers of coverage:

* registry/selection semantics (registration, env var, context manager,
  unavailable-backend errors),
* kernel equivalence, parametrized over backends: the IC series kernels,
  the stable-fP fit, tomogravity, IPF and the full estimator must agree
  with the NumPy reference within 1e-10 on every backend, and the NumPy
  backend itself must be **bit-identical** to calling the kernels without
  a backend argument,
* the always-available ``numpy_generic`` conformance stand-in — a NumPy
  namespace forced down the namespace-generic code paths (einsum fallback
  included), so the generic kernels are exercised even where
  ``array-api-strict`` / torch / cupy are not installed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    Backend,
    available_backends,
    backend_available,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
    use_backend,
)
from repro.backend.builtins import NumpyBackend
from repro.core.fitting import fit_stable_fp
from repro.core.gravity import gravity_series_values
from repro.core.ic_model import (
    general_ic_series,
    simplified_ic_series,
    time_varying_ic_series,
)
from repro.errors import BackendError, BackendUnavailableError, ValidationError
from repro.estimation.ipf import iterative_proportional_fitting_series
from repro.estimation.pipeline import TMEstimator
from repro.estimation.tomogravity import tomogravity_estimate

TOL = 1e-10


class NumpyGenericBackend(NumpyBackend):
    """NumPy namespace routed through the namespace-generic kernel paths.

    ``is_numpy=False`` forces every kernel down the generic implementation
    and ``has_native_einsum=False`` forces the einsum pattern fallback, so
    this backend tests exactly the code the gated backends run — with the
    one namespace that is always installed.
    """

    name = "numpy_generic"
    is_numpy = False
    has_native_einsum = False
    supports_scipy = False


register_backend(
    "numpy_generic",
    NumpyGenericBackend,
    description="test-only: generic kernel paths over the NumPy namespace",
    overwrite=True,
)


def _backend_params():
    params = [
        "numpy",
        "numpy_generic",
        pytest.param(
            "array_api_strict",
            marks=pytest.mark.skipif(
                not backend_available("array_api_strict"),
                reason="array-api-strict is not installed",
            ),
        ),
        pytest.param(
            "torch",
            marks=pytest.mark.skipif(
                not backend_available("torch"), reason="torch is not installed"
            ),
        ),
        pytest.param(
            "cupy",
            marks=pytest.mark.skipif(
                not backend_available("cupy"), reason="cupy is not installed"
            ),
        ),
    ]
    return params


@pytest.fixture(params=_backend_params())
def backend(request):
    return get_backend(request.param)


@pytest.fixture()
def small_problem():
    rng = np.random.default_rng(7)
    t, n = 16, 7
    activity = rng.random((t, n)) * 1e6
    preference = rng.random(n) + 1e-2
    return activity, preference


# ---------------------------------------------------------------------------
# registry / selection
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtins_are_registered(self):
        names = backend_names()
        for name in ("numpy", "array_api_strict", "torch", "cupy"):
            assert name in names

    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()
        assert get_backend("numpy").is_numpy

    def test_default_resolution_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert get_backend().name == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy_generic")
        assert get_backend().name == "numpy_generic"

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        with use_backend("numpy_generic") as inner:
            assert inner.name == "numpy_generic"
            assert get_backend().name == "numpy_generic"
        assert get_backend().name == "numpy"

    def test_explicit_argument_beats_context(self):
        with use_backend("numpy_generic"):
            assert resolve_backend("numpy").name == "numpy"

    def test_use_backend_none_is_noop(self):
        with use_backend(None) as backend:
            assert backend.name == get_backend().name

    def test_nested_contexts_pop_in_order(self):
        with use_backend("numpy_generic"):
            with use_backend("numpy"):
                assert get_backend().name == "numpy"
            assert get_backend().name == "numpy_generic"

    def test_backend_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unavailable_backend_raises_with_hint(self):
        missing = [
            name for name in ("torch", "cupy", "array_api_strict")
            if not backend_available(name)
        ]
        if not missing:
            pytest.skip("every gated backend happens to be installed")
        with pytest.raises(BackendUnavailableError, match="not installed"):
            get_backend(missing[0])

    def test_unknown_backend_names_choices(self):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError, match="registered backends"):
            get_backend("no_such_backend")

    def test_resolve_accepts_instances(self):
        instance = NumpyGenericBackend()
        assert resolve_backend(instance) is instance

    def test_einsum_fallback_rejects_unknown_pattern(self):
        backend = get_backend("numpy_generic")
        with pytest.raises(BackendError, match="no fallback"):
            backend.einsum("abc,cd->abd", np.ones((2, 2, 2)), np.ones((2, 2)))

    def test_describe_fingerprint(self):
        info = get_backend("numpy").describe()
        assert info["name"] == "numpy"
        assert info["module"] == "numpy"
        assert info["device"] == "cpu"


# ---------------------------------------------------------------------------
# transfers
# ---------------------------------------------------------------------------

class TestTransfers:
    def test_asarray_to_numpy_roundtrip(self, backend):
        host = np.arange(12, dtype=float).reshape(3, 4)
        device = backend.asarray(host)
        assert np.array_equal(backend.to_numpy(device), host)

    def test_asarray_is_idempotent(self, backend):
        device = backend.asarray(np.ones((2, 2)))
        again = backend.asarray(device)
        assert np.array_equal(backend.to_numpy(again), np.ones((2, 2)))

    def test_to_numpy_returns_writable_host_array(self, backend):
        result = backend.to_numpy(backend.asarray(np.zeros(3)))
        result += 1.0  # must not raise


# ---------------------------------------------------------------------------
# kernel equivalence
# ---------------------------------------------------------------------------

def _close(reference: np.ndarray, candidate) -> None:
    candidate = np.asarray(candidate)
    scale = max(float(np.max(np.abs(reference))), 1.0)
    assert np.max(np.abs(reference - candidate)) / scale <= TOL


class TestKernelEquivalence:
    def test_simplified_ic_series(self, backend, small_problem):
        activity, preference = small_problem
        reference = simplified_ic_series(0.25, activity, preference)
        device = simplified_ic_series(0.25, activity, preference, backend=backend)
        _close(reference, backend.to_numpy(device))

    def test_general_ic_series(self, backend, small_problem):
        activity, preference = small_problem
        rng = np.random.default_rng(11)
        forward = rng.random((activity.shape[1], activity.shape[1]))
        reference = general_ic_series(forward, activity, preference)
        device = general_ic_series(forward, activity, preference, backend=backend)
        _close(reference, backend.to_numpy(device))

    def test_time_varying_ic_series(self, backend, small_problem):
        activity, _ = small_problem
        rng = np.random.default_rng(13)
        preference_series = rng.random(activity.shape) + 1e-3
        forward_series = rng.random(activity.shape[0])
        reference = time_varying_ic_series(forward_series, activity, preference_series)
        device = time_varying_ic_series(
            forward_series, activity, preference_series, backend=backend
        )
        _close(reference, backend.to_numpy(device))

    def test_time_varying_scalar_f(self, backend, small_problem):
        activity, _ = small_problem
        rng = np.random.default_rng(17)
        preference_series = rng.random(activity.shape) + 1e-3
        reference = time_varying_ic_series(0.3, activity, preference_series)
        device = time_varying_ic_series(0.3, activity, preference_series, backend=backend)
        _close(reference, backend.to_numpy(device))

    def test_gravity_series_values(self, backend, small_problem):
        activity, _ = small_problem
        rng = np.random.default_rng(19)
        egress = rng.random(activity.shape) * 1e6
        ingress = activity.copy()
        ingress[3] = 0.0  # a zero-traffic bin must come back all-zero
        reference = gravity_series_values(ingress, egress)
        device = gravity_series_values(ingress, egress, backend=backend)
        _close(reference, backend.to_numpy(device))
        assert np.all(backend.to_numpy(device)[3] == 0.0)

    def test_device_inputs_accepted(self, backend, small_problem):
        activity, preference = small_problem
        device = simplified_ic_series(
            0.25, backend.asarray(activity), backend.asarray(preference), backend=backend
        )
        _close(simplified_ic_series(0.25, activity, preference), backend.to_numpy(device))

    def test_numpy_backend_is_bit_identical(self, small_problem):
        activity, preference = small_problem
        assert np.array_equal(
            simplified_ic_series(0.25, activity, preference, backend="numpy"),
            simplified_ic_series(0.25, activity, preference),
        )


class TestFitEquivalence:
    @pytest.fixture(scope="class")
    def observed(self):
        rng = np.random.default_rng(23)
        t, n = 20, 8
        activity = rng.random((t, n)) * 1e6
        preference = rng.random(n) + 0.1
        preference /= preference.sum()
        values = simplified_ic_series(0.27, activity, preference)
        values *= 1.0 + 0.02 * rng.standard_normal(values.shape)
        return np.clip(values, 0.0, None)

    def test_fit_stable_fp_matches_reference(self, backend, observed):
        reference = fit_stable_fp(observed)
        fitted = fit_stable_fp(observed, backend=backend)
        assert abs(reference.forward_fraction - fitted.forward_fraction) <= TOL
        assert abs(reference.mean_error - fitted.mean_error) <= TOL
        _close(reference.preference, fitted.preference)
        _close(reference.activity, fitted.activity)
        assert isinstance(fitted.preference, np.ndarray)  # host result

    def test_fit_refine_rejected_off_numpy(self, observed):
        with pytest.raises(ValidationError, match="refine"):
            fit_stable_fp(observed, refine=True, backend="numpy_generic")

    def test_fit_resolves_ambient_backend(self, observed):
        reference = fit_stable_fp(observed)
        with use_backend("numpy_generic"):
            ambient = fit_stable_fp(observed)
        assert abs(reference.mean_error - ambient.mean_error) <= TOL


class TestEstimationEquivalence:
    @pytest.fixture(scope="class")
    def system_and_prior(self):
        from repro.core.gravity import gravity_series
        from repro.estimation.linear_system import simulate_link_loads
        from repro.synthesis.datasets import load_dataset

        data = load_dataset("geant", n_weeks=1, bins_per_week=48)
        week = data.week(0)[:10]
        system = simulate_link_loads(data.topology, week, noise_std=0.01, seed=0)
        return system, gravity_series(week), week

    def test_tomogravity_matches_reference(self, backend, system_and_prior):
        system, prior, _ = system_and_prior
        matrix, observations = system.augmented_system()
        vectors = prior.to_vectors()
        reference = tomogravity_estimate(vectors, matrix, observations)
        device = tomogravity_estimate(vectors, matrix, observations, backend=backend)
        _close(reference, backend.to_numpy(device))

    def test_tomogravity_rejects_sparse_off_numpy(self, system_and_prior):
        system, prior, _ = system_and_prior
        matrix, observations = system.augmented_system(as_sparse=True)
        with pytest.raises(ValidationError, match="sparse"):
            tomogravity_estimate(
                prior.to_vectors(), matrix, observations, backend="numpy_generic"
            )

    def test_ipf_matches_reference(self, backend, system_and_prior):
        system, prior, _ = system_and_prior
        seeds = np.asarray(prior.values)
        reference = iterative_proportional_fitting_series(
            seeds, system.ingress, system.egress
        )
        device = iterative_proportional_fitting_series(
            seeds, system.ingress, system.egress, backend=backend
        )
        _close(reference, backend.to_numpy(device))

    def test_ipf_zero_bins_and_empty_rows(self, backend):
        seeds = np.zeros((3, 4, 4))
        seeds[0] = np.ones((4, 4))
        seeds[2, 0, :] = 0.0
        rows = np.ones((3, 4)) * 5.0
        cols = np.ones((3, 4)) * 5.0
        rows[1] = 0.0  # zero-traffic bin
        cols[1] = 0.0
        reference = iterative_proportional_fitting_series(seeds, rows, cols)
        device = iterative_proportional_fitting_series(seeds, rows, cols, backend=backend)
        _close(reference, backend.to_numpy(device))
        assert np.all(backend.to_numpy(device)[1] == 0.0)

    def test_estimator_end_to_end(self, backend, system_and_prior):
        system, prior, truth = system_and_prior
        reference = TMEstimator().estimate(system, prior, ground_truth=truth)
        device = TMEstimator(backend=backend).estimate(system, prior, ground_truth=truth)
        assert np.max(np.abs(reference.errors - device.errors)) <= TOL
        assert isinstance(device.estimate.values, np.ndarray)

    def test_estimator_stream_matches_in_memory(self, backend, system_and_prior):
        system, prior, truth = system_and_prior
        in_memory = TMEstimator(backend=backend).estimate(system, prior, ground_truth=truth)
        streamed = TMEstimator(backend=backend).estimate_stream(
            system, prior, ground_truth_stream=truth
        )
        assert np.max(np.abs(in_memory.errors - streamed.errors)) <= TOL

    def test_entropy_round_trips_through_host(self, system_and_prior):
        system, prior, truth = system_and_prior
        reference = TMEstimator(method="entropy").estimate(system, prior, ground_truth=truth)
        device = TMEstimator(method="entropy", backend="numpy_generic").estimate(
            system, prior, ground_truth=truth
        )
        assert np.max(np.abs(reference.errors - device.errors)) <= TOL


# ---------------------------------------------------------------------------
# scenario / CLI threading
# ---------------------------------------------------------------------------

class TestScenarioThreading:
    def test_scenario_backend_field_round_trips(self):
        from repro.scenarios import Scenario

        scenario = Scenario(dataset="geant", prior="stable_fp", backend="numpy")
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_scenario_backend_name_is_canonicalised(self):
        from repro.scenarios import Scenario

        scenario = Scenario(dataset="geant", prior="stable_fp", backend="Array-API-Strict")
        assert scenario.backend == "array_api_strict"

    def test_scenario_unknown_backend_rejected(self):
        from repro.errors import RegistryError
        from repro.scenarios import Scenario

        with pytest.raises(RegistryError, match="backend"):
            Scenario(dataset="geant", prior="stable_fp", backend="no_such").validate()

    def test_runner_backend_matches_default(self):
        from repro.scenarios import Scenario, ScenarioRunner

        base = Scenario(dataset="geant", prior="stable_fp", bins_per_week=36, max_bins=4)
        reference = ScenarioRunner().run(base)
        generic = ScenarioRunner().run(base.replace(backend="numpy_generic"))
        assert np.max(np.abs(reference.errors - generic.errors)) <= TOL
        assert "numpy_generic" in generic.format_table()

    def test_cli_backend_flag(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["estimate", "--prior", "stable_fp", "--dataset", "geant",
             "--bins-per-week", "36", "--max-bins", "4", "--backend", "numpy"]
        )
        assert exit_code == 0
        assert "backend" in capsys.readouterr().out

    def test_cli_unavailable_backend_exits_2(self, capsys):
        missing = [
            name for name in ("torch", "cupy", "array_api_strict")
            if not backend_available(name)
        ]
        if not missing:
            pytest.skip("every gated backend happens to be installed")
        from repro.cli import main

        exit_code = main(
            ["estimate", "--prior", "stable_fp", "--dataset", "geant",
             "--bins-per-week", "36", "--max-bins", "4", "--backend", missing[0]]
        )
        assert exit_code == 2
        assert "not installed" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# benchmark integration
# ---------------------------------------------------------------------------

class TestBenchIntegration:
    def test_bench_ic_series_backend_records_backends(self):
        from repro.benchmarking import bench_ic_series_backend

        record = bench_ic_series_backend(n=10, timesteps=16, repeat=1)
        assert record.name == "ic_series_backend"
        assert "numpy" in record.extra_info["backends"]
        assert record.extra_info["devices"]["numpy"] == "cpu"

    def test_compare_treats_missing_backends_as_non_regressions(self, tmp_path):
        from repro.benchmarking import (
            BenchmarkRecord,
            compare_bench_files,
            write_bench_json,
        )

        old = BenchmarkRecord(
            name="ic_series_backend",
            wall_seconds=1.0,
            extra_info={"backends": {"numpy": 1.0, "torch": 0.1}},
        )
        new = BenchmarkRecord(
            name="ic_series_backend",
            wall_seconds=1.0,
            extra_info={"backends": {"numpy": 1.05, "cupy": 0.2}},
        )
        old_path = write_bench_json([old], path=tmp_path / "old.json", revision="old")
        new_path = write_bench_json([new], path=tmp_path / "new.json", revision="new")
        comparison = compare_bench_files(old_path, new_path, threshold=0.25)
        names = [row[0] for row in comparison.rows]
        assert "ic_series_backend[numpy]" in names
        assert "ic_series_backend[torch]" not in names
        assert "ic_series_backend[cupy]" not in names
        assert not comparison.has_regressions
        assert "ic_series_backend[torch]" in comparison.only_old
        assert "ic_series_backend[cupy]" in comparison.only_new

    def test_compare_flags_backend_regression(self, tmp_path):
        from repro.benchmarking import (
            BenchmarkRecord,
            compare_bench_files,
            write_bench_json,
        )

        old = BenchmarkRecord(
            name="ic_series_backend", wall_seconds=1.0,
            extra_info={"backends": {"numpy": 1.0}},
        )
        new = BenchmarkRecord(
            name="ic_series_backend", wall_seconds=1.0,
            extra_info={"backends": {"numpy": 2.0}},
        )
        old_path = write_bench_json([old], path=tmp_path / "old.json", revision="old")
        new_path = write_bench_json([new], path=tmp_path / "new.json", revision="new")
        comparison = compare_bench_files(old_path, new_path, threshold=0.25)
        assert comparison.has_regressions
        assert comparison.regressions[0][0] == "ic_series_backend[numpy]"


# ---------------------------------------------------------------------------
# custom-dataset streaming (satellite)
# ---------------------------------------------------------------------------

class TestCustomDatasetStreaming:
    def test_error_lists_streamable_datasets(self):
        from repro.registry import DATASETS, register_dataset
        from repro.synthesis import open_dataset_stream

        register_dataset("cube_only", lambda n_weeks=1, **kwargs: None, overwrite=True)
        try:
            with pytest.raises(ValidationError) as excinfo:
                open_dataset_stream("cube_only", n_weeks=1)
            message = str(excinfo.value)
            assert "geant" in message and "totem" in message
            assert "register_dataset_stream" in message
        finally:
            DATASETS.unregister("cube_only")

    def test_registered_chunk_factory_streams(self):
        from repro.registry import DATASETS, register_dataset
        from repro.streaming import FunctionChunkStream
        from repro.synthesis import (
            open_dataset_stream,
            register_dataset_stream,
            streamable_dataset_names,
        )
        from repro.synthesis.datasets import _STREAM_OPENERS

        register_dataset("toy_stream", lambda n_weeks=1, **kwargs: None, overwrite=True)

        class ToyStreaming:
            nodes = ("a", "b")
            n_weeks = 1
            bin_seconds = 300.0

            def week_stream(self, index, *, chunk_bins=None, max_bins=None):
                def factory(chunk):
                    yield 0, np.full((4, 2, 2), float(index + 1))

                return FunctionChunkStream(
                    factory, n_bins=4, nodes=self.nodes, bin_seconds=self.bin_seconds
                )

        seen_kwargs = {}

        @register_dataset_stream("toy_stream")
        def open_toy(**kwargs):
            seen_kwargs.update(kwargs)
            return ToyStreaming()

        try:
            assert "toy_stream" in streamable_dataset_names()
            data = open_dataset_stream("toy_stream", n_weeks=1, chunk_bins=2)
            assert seen_kwargs["n_weeks"] == 1 and seen_kwargs["chunk_bins"] == 2
            week = data.week_stream(0).materialize()
            assert np.all(week.values == 1.0)
        finally:
            DATASETS.unregister("toy_stream")
            _STREAM_OPENERS.pop("toy_stream", None)

    def test_builtin_opener_cannot_be_replaced(self):
        from repro.errors import RegistryError
        from repro.synthesis import register_dataset_stream

        with pytest.raises(RegistryError, match="built-in"):
            register_dataset_stream("geant", lambda **kwargs: None)

    def test_duplicate_opener_needs_overwrite(self):
        from repro.errors import RegistryError
        from repro.synthesis import register_dataset_stream
        from repro.synthesis.datasets import _STREAM_OPENERS

        register_dataset_stream("dup_stream", lambda **kwargs: None)
        try:
            with pytest.raises(RegistryError, match="overwrite"):
                register_dataset_stream("dup_stream", lambda **kwargs: None)
            register_dataset_stream("dup_stream", lambda **kwargs: None, overwrite=True)
        finally:
            _STREAM_OPENERS.pop("dup_stream", None)

"""Tests for the TM-estimation priors (Section 6) and their linear algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitting import fit_stable_fp
from repro.core.ic_model import simplified_ic_matrix, simplified_ic_series
from repro.core.priors import (
    GravityPrior,
    MeasuredParameterPrior,
    StableFPPrior,
    StableFPrior,
    estimate_activity_from_marginals,
    ic_design_matrix,
    marginal_operators,
    stable_f_closed_form,
)
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.errors import ShapeError, ValidationError


@pytest.fixture(scope="module")
def stable_fp_world():
    """A clean stable-fP world: parameters, series and marginals."""
    rng = np.random.default_rng(21)
    n, t = 6, 20
    preference = rng.lognormal(-4.3, 1.7, n)
    preference /= preference.sum()
    activity = rng.lognormal(np.log(1e6), 0.6, (t, n))
    forward = 0.3
    values = simplified_ic_series(forward, activity, preference)
    series = TrafficMatrixSeries(values)
    return forward, preference, activity, series


class TestDesignMatrix:
    def test_phi_maps_activity_to_vectorised_tm(self, stable_fp_world):
        forward, preference, activity, series = stable_fp_world
        phi = ic_design_matrix(forward, preference)
        for t in range(3):
            np.testing.assert_allclose(
                phi @ activity[t],
                simplified_ic_matrix(forward, activity[t], preference).reshape(-1),
            )

    def test_shape(self):
        phi = ic_design_matrix(0.25, np.ones(5))
        assert phi.shape == (25, 5)


class TestMarginalOperators:
    def test_h_and_g_sum_to_marginals(self, stable_fp_world):
        _, _, _, series = stable_fp_world
        n = series.n_nodes
        h, g, q = marginal_operators(n)
        vector = series.values[0].reshape(-1)
        np.testing.assert_allclose(h @ vector, series.ingress[0])
        np.testing.assert_allclose(g @ vector, series.egress[0])
        np.testing.assert_allclose(q @ vector, np.concatenate([series.ingress[0], series.egress[0]]))

    def test_rejects_bad_size(self):
        with pytest.raises(ValidationError):
            marginal_operators(0)


class TestActivityFromMarginals:
    def test_recovers_activity_exactly_in_model(self, stable_fp_world):
        forward, preference, activity, series = stable_fp_world
        recovered = estimate_activity_from_marginals(
            forward, preference, series.ingress, series.egress
        )
        np.testing.assert_allclose(recovered, activity, rtol=1e-6)

    def test_single_bin_shape(self, stable_fp_world):
        forward, preference, activity, series = stable_fp_world
        recovered = estimate_activity_from_marginals(
            forward, preference, series.ingress[0], series.egress[0]
        )
        assert recovered.shape == (series.n_nodes,)

    def test_shape_mismatch(self, stable_fp_world):
        forward, preference, _, series = stable_fp_world
        with pytest.raises(ShapeError):
            estimate_activity_from_marginals(
                forward, preference, series.ingress, series.egress[:-1]
            )


class TestStableFClosedForm:
    def test_recovers_parameters_in_model(self, stable_fp_world):
        forward, preference, activity, series = stable_fp_world
        est_activity, est_preference = stable_f_closed_form(
            forward, series.ingress, series.egress
        )
        np.testing.assert_allclose(est_activity, activity, rtol=1e-9)
        np.testing.assert_allclose(
            est_preference, np.tile(preference, (series.n_timesteps, 1)), rtol=1e-6
        )

    def test_singular_at_half(self):
        with pytest.raises(ValidationError):
            stable_f_closed_form(0.5, np.ones(3), np.ones(3))

    def test_clips_negative_estimates(self):
        # Marginals inconsistent with any IC structure at f=0.2.
        activity, preference = stable_f_closed_form(0.2, np.array([10.0, 0.0]), np.array([0.0, 10.0]))
        assert np.all(activity >= 0)
        assert np.all(preference >= 0)
        assert preference.sum() == pytest.approx(1.0)


class TestPriors:
    def test_measured_prior_reproduces_model_series(self, stable_fp_world):
        forward, preference, activity, series = stable_fp_world
        prior = MeasuredParameterPrior(forward, preference, activity)
        np.testing.assert_allclose(prior.series().values, series.values, rtol=1e-9)

    def test_measured_prior_from_fit(self, stable_fp_world):
        *_, series = stable_fp_world
        fit = fit_stable_fp(series)
        prior = MeasuredParameterPrior.from_fit(fit)
        assert prior.series().n_timesteps == series.n_timesteps

    def test_measured_prior_rejects_wrong_model(self, stable_fp_world):
        *_, series = stable_fp_world
        fit = fit_stable_fp(series)
        fit.model = "stable-f"
        with pytest.raises(ValidationError):
            MeasuredParameterPrior.from_fit(fit)

    def test_stable_fp_prior_exact_in_model(self, stable_fp_world):
        forward, preference, activity, series = stable_fp_world
        prior = StableFPPrior(forward, preference)
        result = prior.series(series.ingress, series.egress)
        np.testing.assert_allclose(result.values, series.values, rtol=1e-6)

    def test_stable_fp_prior_properties(self):
        prior = StableFPPrior(0.25, [1.0, 1.0, 2.0])
        assert prior.forward_fraction == 0.25
        assert prior.preference.sum() == pytest.approx(1.0)

    def test_stable_f_prior_exact_in_model(self, stable_fp_world):
        forward, preference, activity, series = stable_fp_world
        prior = StableFPrior(forward)
        result = prior.series(series.ingress, series.egress)
        np.testing.assert_allclose(result.values, series.values, rtol=1e-6)

    def test_stable_f_prior_rejects_half(self):
        with pytest.raises(ValidationError):
            StableFPrior(0.5)

    def test_gravity_prior_matches_gravity_model(self, stable_fp_world):
        *_, series = stable_fp_world
        from repro.core.gravity import gravity_series

        prior = GravityPrior().series(series.ingress, series.egress)
        np.testing.assert_allclose(prior.values, gravity_series(series).values, rtol=1e-9)

    def test_gravity_prior_shape_mismatch(self):
        with pytest.raises(ShapeError):
            GravityPrior().series(np.ones((3, 2)), np.ones((2, 2)))

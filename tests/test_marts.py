"""Tests for the spill-aware analytics marts (:mod:`repro.marts`).

The contract under test is the one ``repro report`` advertises:

* exact marts (top talkers, hourly rollups, totals) are **bit-identical**
  to the materialised numpy oracle under any shard/chunk geometry,
* sketched marts (quantiles, CCDF) honour their committed error bounds on
  adversarial inputs and merge commutatively,
* archives are reduced one shard at a time — peak memory is bounded by
  the shard size, not the series length (asserted via ``tracemalloc``),
* the slice-aware :class:`SpilledSeries` indexing reads only overlapping
  shards.
"""

from __future__ import annotations

import json
import tracemalloc

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.errors import ValidationError
from repro.marts import (
    CCDFSketch,
    ErrorQuantilesMart,
    OdCcdfMart,
    OverviewMart,
    QuantileSketch,
    TopK,
    TopTalkersMart,
    TrafficByHourMart,
    build_mart,
    build_report,
    mart_from_state,
    open_archive,
    render_report,
)
from repro.marts.archive import ServeArchive, SweepArchive
from repro.scenarios.spill import SpillStore, discover_spilled_series


def _spilled(tmp_path, name, values, shard_bins):
    store = SpillStore(tmp_path, shard_bins=shard_bins)
    return store.add_series(name, values)


# ---------------------------------------------------------------------------
# sketches
# ---------------------------------------------------------------------------

def _rank_error(sketch, values, quantiles):
    """Worst observed rank error of the sketch's answers over ``values``."""
    ordered = np.sort(values)
    n = len(ordered)
    worst = 0.0
    for q in quantiles:
        answer = sketch.query(q)
        target = q * (n - 1)
        positions = np.where(ordered == answer)[0]
        assert positions.size, "sketch answered with a value not in the stream"
        error = min(abs(float(p) - target) for p in positions)
        worst = max(worst, error / n)
    return worst


ADVERSARIAL = {
    "uniform": lambda rng, n: rng.uniform(0, 1, n),
    "lognormal": lambda rng, n: rng.lognormal(3, 2, n),
    "constant": lambda rng, n: np.full(n, 7.25),
    "heavy_tail": lambda rng, n: rng.pareto(1.1, n) + 1.0,
    "sorted": lambda rng, n: np.sort(rng.normal(size=n)),
    "reverse_sorted": lambda rng, n: np.sort(rng.normal(size=n))[::-1],
}


class TestQuantileSketch:
    QUANTILES = (0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0)

    @pytest.mark.parametrize("shape", sorted(ADVERSARIAL))
    def test_rank_error_within_committed_bound(self, shape):
        rng = np.random.default_rng(11)
        values = ADVERSARIAL[shape](rng, 20_000)
        sketch = QuantileSketch(epsilon=0.01)
        for start in range(0, len(values), 1111):  # awkward chunking
            sketch.update(values[start : start + 1111])
        assert sketch.count == len(values)
        assert sketch.rank_error_epsilon == pytest.approx(0.01)
        assert _rank_error(sketch, values, self.QUANTILES) <= sketch.rank_error_epsilon

    def test_extremes_are_exact(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=5000)
        sketch = QuantileSketch(epsilon=0.02)
        sketch.update(values)
        assert sketch.minimum == values.min()
        assert sketch.maximum == values.max()

    def test_nan_values_counted_not_folded(self):
        values = np.array([1.0, np.nan, 3.0, np.nan, 5.0])
        sketch = QuantileSketch(epsilon=0.1)
        sketch.update(values)
        assert sketch.count == 3
        assert sketch.nan_count == 2
        assert sketch.query(0.5) == 3.0

    def test_merge_is_commutative_and_bound_widens(self):
        rng = np.random.default_rng(29)
        for seed in range(4):
            parts = np.split(rng.lognormal(2, 1.5, 16_000), [7000])
            a1, b1 = QuantileSketch(epsilon=0.01), QuantileSketch(epsilon=0.01)
            a2, b2 = QuantileSketch(epsilon=0.01), QuantileSketch(epsilon=0.01)
            for s in (a1, a2):
                s.update(parts[0])
            for s in (b1, b2):
                s.update(parts[1])
            ab = a1.merge(b1)
            ba = b2.merge(a2)
            assert ab.count == ba.count == 16_000
            assert ab.rank_error_epsilon == ba.rank_error_epsilon == pytest.approx(0.02)
            all_values = np.concatenate(parts)
            for q in self.QUANTILES:
                assert ab.query(q) == ba.query(q)
            assert _rank_error(ab, all_values, self.QUANTILES) <= ab.rank_error_epsilon

    def test_eight_way_shard_merge_stays_within_summed_bound(self):
        rng = np.random.default_rng(5)
        values = rng.gamma(2.0, 10.0, 24_000)
        shards = np.split(values, 8)
        merged = None
        for shard in shards:
            sketch = QuantileSketch(epsilon=0.005)
            sketch.update(shard)
            merged = sketch if merged is None else merged.merge(sketch)
        assert merged.rank_error_epsilon == pytest.approx(0.04)
        assert _rank_error(merged, values, self.QUANTILES) <= merged.rank_error_epsilon

    def test_state_roundtrip_preserves_answers(self):
        rng = np.random.default_rng(17)
        sketch = QuantileSketch(epsilon=0.02)
        sketch.update(rng.normal(size=4000))
        clone = QuantileSketch.from_state(sketch.to_state())
        for q in self.QUANTILES:
            assert clone.query(q) == sketch.query(q)
        assert clone.rank_error_epsilon == sketch.rank_error_epsilon

    def test_memory_is_bounded_by_epsilon_not_stream_length(self):
        sketch = QuantileSketch(epsilon=0.01)
        rng = np.random.default_rng(1)
        chunk = rng.normal(size=1000)
        tracemalloc.start()
        for _ in range(200):  # 200k values through an eps=0.01 sketch
            sketch.update(chunk)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # State is O(1/eps log(eps n)) tuples; 1 MiB is far above that but
        # far below what retaining the 200k-value stream would need.
        assert peak < 1 << 20


class TestCCDFSketch:
    def test_ccdf_counts_exact_at_edges(self):
        rng = np.random.default_rng(23)
        values = rng.lognormal(4, 2, 30_000)
        sketch = CCDFSketch(bins_per_decade=20)
        sketch.update(values)
        rows = sketch.ccdf()
        assert rows, "occupied sketch must render CCDF points"
        for edge, count_ge, fraction_ge in rows:
            assert count_ge == int((values >= edge).sum())
            assert fraction_ge == count_ge / len(values)

    def test_zero_negative_nan_counted_separately(self):
        sketch = CCDFSketch()
        sketch.update(np.array([0.0, -1.0, np.nan, 2.0, 3.0]))
        assert sketch.zero_count == 1
        assert sketch.negative_count == 1
        assert sketch.nan_count == 1
        assert sketch.positive_count == 2
        assert sketch.count == 4  # NaNs excluded, zeros/negatives included

    def test_merge_is_exact_integer_addition(self):
        rng = np.random.default_rng(7)
        left, right = rng.lognormal(3, 1, 5000), rng.lognormal(5, 1, 5000)
        whole = CCDFSketch()
        whole.update(np.concatenate([left, right]))
        a, b = CCDFSketch(), CCDFSketch()
        a.update(left)
        b.update(right)
        assert a.merge(b).ccdf() == whole.ccdf()

    def test_quantile_within_one_log_bin(self):
        rng = np.random.default_rng(13)
        values = rng.pareto(1.2, 50_000) + 1.0
        sketch = CCDFSketch(bins_per_decade=20)
        sketch.update(values)
        bin_ratio = 10.0 ** (1.0 / 20.0)
        for q in (0.5, 0.9, 0.99):
            exact = np.quantile(values, q)
            assert exact / bin_ratio <= sketch.quantile(q) <= exact * bin_ratio

    def test_state_roundtrip(self):
        sketch = CCDFSketch(bins_per_decade=10)
        sketch.update(np.array([1.0, 10.0, 100.0, 0.0]))
        clone = CCDFSketch.from_state(sketch.to_state())
        assert clone.ccdf() == sketch.ccdf()
        assert clone.zero_count == sketch.zero_count


class TestTopK:
    def test_keeps_the_k_largest_in_order(self):
        top = TopK(3)
        top.update((float(v), str(v)) for v in [5, 1, 9, 7, 3, 8])
        assert top.result() == [(9.0, "9"), (8.0, "8"), (7.0, "7")]

    def test_heap_never_exceeds_k(self):
        top = TopK(4)
        top.update((float(i), i) for i in range(10_000))
        assert len(top.result()) == 4
        assert top.result()[0] == (9999.0, 9999)


# ---------------------------------------------------------------------------
# exact cube marts: bit-identity against the materialised oracle
# ---------------------------------------------------------------------------

def _cube(bins=96, n=6, seed=0):
    return np.random.default_rng(seed).gamma(2.0, 1000.0, size=(bins, n, n))


CHUNKINGS = [1, 7, 13, 50, 96]


class TestExactMartsBitIdentity:
    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_top_talkers_match_cube_sum_bitwise(self, chunk):
        cube = _cube()
        mart = TopTalkersMart(k=5)
        for t0 in range(0, len(cube), chunk):
            mart.update(t0, cube[t0 : t0 + chunk])
        od_sum = cube.sum(axis=0)
        result = mart.result()
        assert np.array_equal(np.asarray(result["ingress_totals"]), od_sum.sum(axis=1))
        assert np.array_equal(np.asarray(result["egress_totals"]), od_sum.sum(axis=0))
        order = np.argsort(od_sum, axis=None)[::-1][:5]
        assert [row["total"] for row in result["rows"]] == [
            float(od_sum.flat[i]) for i in order
        ]

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_hourly_rollup_matches_sequential_oracle(self, chunk):
        cube = _cube()
        mart = TrafficByHourMart(bins_per_hour=4)
        for t0 in range(0, len(cube), chunk):
            mart.update(t0, cube[t0 : t0 + chunk])
        bin_totals = cube.sum(axis=(1, 2))
        oracle = np.zeros(24)
        np.add.at(oracle, (np.arange(len(cube)) // 4) % 24, bin_totals)
        rows = {row["hour"]: row["total"] for row in mart.result()["rows"]}
        for hour in range(24):
            if oracle[hour]:
                assert rows[hour] == oracle[hour]

    def test_overview_totals_match_oracle(self):
        cube = _cube()
        mart = OverviewMart()
        for t0 in range(0, len(cube), 13):
            mart.update(t0, cube[t0 : t0 + 13])
        result = mart.result()
        bin_totals = cube.sum(axis=(1, 2))
        assert result["total_traffic"] == cube.sum(axis=0).sum()
        assert result["max_bin_total"] == bin_totals.max()
        assert result["min_bin_total"] == bin_totals.min()

    def test_merge_of_partials_approximates_single_pass(self):
        """Merging window partials adds partial sums — same ranking, totals
        equal up to float association (bit-identity holds only for a single
        sequential pass, which is what the report layer does)."""
        cube = _cube()
        whole = TopTalkersMart(k=4).consume([(0, cube)]).result()
        left = TopTalkersMart(k=4).consume([(0, cube[:40])])
        right = TopTalkersMart(k=4).consume([(40, cube[40:])])
        merged = left.merge(right).result()
        assert merged["n_bins"] == whole["n_bins"] == 96
        assert [(row["origin"], row["destination"]) for row in merged["rows"]] == [
            (row["origin"], row["destination"]) for row in whole["rows"]
        ]
        np.testing.assert_allclose(
            merged["ingress_totals"], whole["ingress_totals"], rtol=1e-12
        )
        for got, want in zip(merged["rows"], whole["rows"]):
            assert got["total"] == pytest.approx(want["total"], rel=1e-12)

    def test_mart_state_roundtrip(self):
        cube = _cube(bins=24)
        for name in ("overview", "top_talkers", "traffic_by_hour", "od_ccdf"):
            mart = build_mart(name)
            mart.consume([(0, cube)])
            clone = mart_from_state(name, mart.to_state())
            assert json.dumps(clone.result(), sort_keys=True) == json.dumps(
                mart.result(), sort_keys=True
            )


class TestErrorQuantilesMart:
    def test_mean_extremes_and_bound(self):
        rng = np.random.default_rng(2)
        series = rng.uniform(0.1, 0.9, 500)
        mart = ErrorQuantilesMart(epsilon=0.01)
        for t0 in range(0, 500, 37):
            mart.update(t0, series[t0 : t0 + 37])
        result = mart.result()
        assert result["bins"] == 500
        assert result["min"] == series.min()
        assert result["max"] == series.max()
        assert result["mean"] == pytest.approx(series.mean(), rel=1e-12)
        assert result["rank_error_bound"] == pytest.approx(0.01)

    def test_nan_bins_reported(self):
        mart = ErrorQuantilesMart()
        mart.update(0, np.array([0.5, np.nan, 0.7]))
        result = mart.result()
        assert result["bins"] == 2  # finite bins only
        assert result["nan_bins"] == 1
        assert result["mean"] == pytest.approx(0.6)


# ---------------------------------------------------------------------------
# spilled-series slicing and iter_blocks
# ---------------------------------------------------------------------------

class TestSpilledSeriesAccess:
    def test_getitem_matches_numpy_semantics(self, tmp_path):
        values = np.random.default_rng(0).normal(size=(101, 3))
        series = _spilled(tmp_path, "s", values, shard_bins=17)
        for key in [
            5,
            -1,
            slice(None),
            slice(10, 40),
            slice(30, 90, 7),
            slice(90, 10, -3),
            slice(None, None, -1),
            (slice(20, 55), 1),
        ]:
            assert np.array_equal(series[key], values[key]), key

    def test_slice_reads_only_overlapping_shards(self, tmp_path):
        values = np.random.default_rng(1).normal(size=(4096, 8, 8))  # 2 MiB
        series = _spilled(tmp_path, "big", values, shard_bins=128)
        tracemalloc.start()
        window = series[256:384]
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert np.array_equal(window, values[256:384])
        # One 128-bin shard is 64 KiB; full materialisation would be 2 MiB.
        assert peak < 600 * 1024

    def test_iter_blocks_covers_window_in_order(self, tmp_path):
        values = np.random.default_rng(2).normal(size=201)
        series = _spilled(tmp_path, "s", values, shard_bins=31)
        rebuilt = []
        expected_t0 = 40
        for t0, block in series.iter_blocks(40, 170):
            assert t0 == expected_t0
            expected_t0 += len(block)
            rebuilt.append(block)
        assert np.array_equal(np.concatenate(rebuilt), values[40:170])

    def test_discover_rejects_gaps(self, tmp_path):
        values = np.arange(60, dtype=float)
        _spilled(tmp_path, "s", values, shard_bins=20)
        (tmp_path / "s-00000020.npz").unlink()
        with pytest.raises(ValidationError, match="expected a shard"):
            discover_spilled_series(tmp_path)


# ---------------------------------------------------------------------------
# archives and the report layer
# ---------------------------------------------------------------------------

def _sweep_archive(tmp_path, bins=60, n=5):
    rng = np.random.default_rng(9)
    cubes = {}
    for label in ("geant-gravity", "geant-measured"):
        cell = tmp_path / label
        store = SpillStore(cell, shard_bins=16)
        cube = rng.gamma(2.0, 500.0, size=(bins, n, n))
        errors = rng.uniform(0.2, 0.5, size=bins)
        store.add_series("estimate", cube)
        store.add_series("errors", errors)
        cubes[label] = (cube, errors)
    return cubes


class TestSweepArchiveReport:
    def test_report_matches_materialised_oracle(self, tmp_path):
        cubes = _sweep_archive(tmp_path)
        report = build_report(open_archive(tmp_path), marts=["top_talkers", "overview"])
        assert report["archive_kind"] == "sweep"
        assert len(report["cells"]) == 2
        for cell in report["cells"]:
            cube, _ = cubes[cell["cell"]]
            od_sum = cube.sum(axis=0)
            top = cell["marts"]["top_talkers"]
            assert np.array_equal(np.asarray(top["ingress_totals"]), od_sum.sum(axis=1))
            assert cell["marts"]["overview"]["total_traffic"] == od_sum.sum()

    def test_window_restricts_the_reduction(self, tmp_path):
        cubes = _sweep_archive(tmp_path)
        report = build_report(
            open_archive(tmp_path), marts=["overview"], window=(16, 48)
        )
        for cell in report["cells"]:
            cube, _ = cubes[cell["cell"]]
            assert cell["marts"]["overview"]["n_bins"] == 32
            assert (
                cell["marts"]["overview"]["total_traffic"]
                == cube[16:48].sum(axis=0).sum()
            )

    def test_unknown_mart_rejected(self, tmp_path):
        _sweep_archive(tmp_path)
        with pytest.raises(ValidationError, match="unknown mart"):
            build_report(open_archive(tmp_path), marts=["nope"])

    def test_missing_series_skips_with_note(self, tmp_path):
        store = SpillStore(tmp_path / "cell", shard_bins=8)
        store.add_series("errors", np.random.default_rng(0).uniform(size=24))
        report = build_report(open_archive(tmp_path), marts=["overview", "error_quantiles"])
        (cell,) = report["cells"]
        assert "error_quantiles" in cell["marts"]
        assert "overview" in cell["skipped"]

    def test_report_memory_bounded_by_shard_not_series(self, tmp_path):
        rng = np.random.default_rng(4)
        store = SpillStore(tmp_path / "cell", shard_bins=64)
        cube = rng.gamma(2.0, 100.0, size=(2048, 12, 12))  # 2.25 MiB materialised
        store.add_series("estimate", cube)
        store.add_series("errors", rng.uniform(size=2048))
        archive = open_archive(tmp_path)
        tracemalloc.start()
        build_report(archive)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < cube.nbytes / 2  # one 72 KiB shard + sketches, not the cube

    def test_render_formats(self, tmp_path):
        _sweep_archive(tmp_path)
        report = build_report(open_archive(tmp_path), marts=["overview"])
        table = render_report(report, "table")
        assert "== geant-gravity ==" in table
        parsed = json.loads(render_report(report, "json"))
        assert parsed["archive_kind"] == "sweep"
        csv_text = render_report(report, "csv")
        assert csv_text.splitlines()[0] == "cell,mart,field,value"
        with pytest.raises(ValidationError, match="unknown report format"):
            render_report(report, "yaml")


class TestServeArchive:
    def _serve_sink(self, tmp_path, bins=40, n=4, sidecar=True):
        rng = np.random.default_rng(31)
        cube = rng.gamma(2.0, 100.0, size=(bins, n, n))
        jsonl = tmp_path / "estimates.jsonl"
        with jsonl.open("w") as handle:
            for index in range(bins):
                handle.write(
                    json.dumps(
                        {
                            "bin": index,
                            "time": index * 300.0,
                            "prior": "gravity",
                            "prior_version": 0,
                            "estimate": cube[index].tolist(),
                        }
                    )
                    + "\n"
                )
        if sidecar:
            writer = SpillStore(tmp_path, shard_bins=16).writer("estimate")
            for start in range(0, bins, 8):
                writer(start, cube[start : start + 8])
            writer.finish()
        return cube

    def test_sidecar_preferred_and_equal_to_jsonl(self, tmp_path):
        cube = self._serve_sink(tmp_path, sidecar=True)
        archive = open_archive(tmp_path)
        assert isinstance(archive, ServeArchive)
        assert archive.used_sidecar
        report = build_report(archive, marts=["overview", "top_talkers"])

        jsonl_only = tmp_path / "jsonl-only"
        jsonl_only.mkdir()
        (tmp_path / "estimates.jsonl").rename(jsonl_only / "estimates.jsonl")
        fallback = open_archive(jsonl_only)
        assert not fallback.used_sidecar
        via_jsonl = build_report(fallback, marts=["overview", "top_talkers"])
        assert json.dumps(report["cells"][0]["marts"], sort_keys=True) == json.dumps(
            via_jsonl["cells"][0]["marts"], sort_keys=True
        )
        od_sum = cube.sum(axis=0)
        overview = report["cells"][0]["marts"]["overview"]
        assert overview["total_traffic"] == od_sum.sum()

    def test_short_sidecar_falls_back_to_jsonl(self, tmp_path):
        self._serve_sink(tmp_path, sidecar=True)
        # Simulate an unflushed tail: drop the last shard so the sidecar is
        # shorter than the published JSONL.
        shards = sorted(tmp_path.glob("estimate-*.npz"))
        shards[-1].unlink()
        archive = open_archive(tmp_path)
        assert not archive.used_sidecar
        report = build_report(archive, marts=["overview"])
        assert report["cells"][0]["marts"]["overview"]["n_bins"] == 40

    def test_service_sidecar_matches_jsonl(self, tmp_path):
        """End-to-end: `repro serve --estimate-shards` writes a coherent sidecar."""
        from repro.ingest import IngestService, SyntheticFlowSource
        from repro.synthesis.datasets import open_dataset_stream

        data = open_dataset_stream("geant", n_weeks=1, bins_per_week=24, seed=5,
                                   chunk_bins=8)
        sink = tmp_path / "sink"
        sink.mkdir()
        service = IngestService(
            SyntheticFlowSource(data.week_stream(0)),
            data.topology,
            bin_seconds=data.week_stream(0).bin_seconds,
            chunk_bins=8,
            sink=sink / "estimates.jsonl",
            estimate_shards_dir=sink / "shards",
            max_bins=24,
        )
        status = service.run()
        assert status.bins_published == 24
        archive = open_archive(sink)
        assert archive.used_sidecar
        published = np.array(
            [
                json.loads(line)["estimate"]
                for line in (sink / "estimates.jsonl").read_text().splitlines()
            ]
        )
        shards = discover_spilled_series(sink / "shards")["estimate"]
        assert np.array_equal(shards.load(), published)


class TestReportCli:
    def test_cli_json_matches_materialised_oracle(self, tmp_path, capsys):
        cubes = _sweep_archive(tmp_path)
        assert cli_main(["report", str(tmp_path), "--marts", "overview",
                         "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        for cell in report["cells"]:
            cube, _ = cubes[cell["cell"]]
            assert cell["marts"]["overview"]["total_traffic"] == cube.sum(axis=0).sum()

    def test_cli_help_marts_and_missing_archive(self, capsys):
        assert cli_main(["report", "--help-marts"]) == 0
        assert "top_talkers" in capsys.readouterr().out
        assert cli_main(["report"]) == 2

    def test_cli_bad_window_rejected(self, tmp_path):
        assert cli_main(["report", str(tmp_path), "--window", "5", "5"]) == 2

    def test_cli_nonexistent_archive_errors_cleanly(self, tmp_path, capsys):
        assert cli_main(["report", str(tmp_path / "missing")]) == 2
        assert "error:" in capsys.readouterr().err

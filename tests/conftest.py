"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ic_model import simplified_ic_series
from repro.core.traffic_matrix import TrafficMatrixSeries
from repro.synthesis.datasets import make_geant_like_dataset
from repro.topology.library import abilene_topology, geant_topology


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def clean_ic_series() -> tuple[TrafficMatrixSeries, float, np.ndarray, np.ndarray]:
    """A noiseless stable-fP series with known parameters (f, preference, activity)."""
    generator = np.random.default_rng(7)
    n, t = 8, 30
    preference = generator.lognormal(-4.3, 1.7, n)
    preference = preference / preference.sum()
    activity = generator.lognormal(np.log(1e6), 0.5, (t, n))
    forward = 0.25
    values = simplified_ic_series(forward, activity, preference)
    series = TrafficMatrixSeries(values, bin_seconds=300.0)
    return series, forward, preference, activity


@pytest.fixture(scope="session")
def small_geant_dataset():
    """A small Geant-like dataset reused across estimation-oriented tests."""
    return make_geant_like_dataset(n_weeks=2, bins_per_week=48, seed=101)


@pytest.fixture(scope="session")
def geant():
    return geant_topology()


@pytest.fixture(scope="session")
def abilene():
    return abilene_topology()

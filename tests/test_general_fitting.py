"""Tests for general-IC fitting (per-pair forward fractions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fitting import fit_stable_fp
from repro.core.general_fitting import fit_general_ic, fit_pairwise_forward_fractions
from repro.core.ic_model import general_ic_matrix
from repro.core.traffic_matrix import TrafficMatrixSeries


@pytest.fixture(scope="module")
def general_world():
    """A clean general-IC world with an asymmetric f matrix."""
    rng = np.random.default_rng(31)
    n, t = 6, 40
    preference = rng.lognormal(-3.0, 1.0, n)
    preference /= preference.sum()
    activity = rng.lognormal(np.log(1e6), 0.6, (t, n))
    perturbation = rng.normal(0.0, 0.08, (n, n))
    f_matrix = np.clip(0.25 + (perturbation - perturbation.T) / 2.0, 0.05, 0.95)
    np.fill_diagonal(f_matrix, 0.25)
    values = np.stack([general_ic_matrix(f_matrix, activity[k], preference) for k in range(t)])
    return f_matrix, preference, activity, values


class TestPairwiseForwardFractions:
    def test_recovers_f_matrix_with_known_parameters(self, general_world):
        f_matrix, preference, activity, values = general_world
        recovered = fit_pairwise_forward_fractions(values, activity, preference, default_forward=0.25)
        off_diagonal = ~np.eye(f_matrix.shape[0], dtype=bool)
        np.testing.assert_allclose(recovered[off_diagonal], f_matrix[off_diagonal], atol=0.02)

    def test_diagonal_uses_default(self, general_world):
        _, preference, activity, values = general_world
        recovered = fit_pairwise_forward_fractions(values, activity, preference, default_forward=0.37)
        np.testing.assert_allclose(np.diag(recovered), 0.37)

    def test_results_within_unit_interval(self, general_world):
        _, preference, activity, values = general_world
        recovered = fit_pairwise_forward_fractions(values, activity, preference)
        assert np.all(recovered >= 0.0) and np.all(recovered <= 1.0)

    def test_zero_traffic_pair_keeps_default(self):
        n, t = 3, 10
        activity = np.ones((t, n))
        preference = np.array([0.5, 0.5, 0.0])  # node 2 never responds
        values = np.zeros((t, n, n))
        recovered = fit_pairwise_forward_fractions(values, activity, preference, default_forward=0.3)
        assert recovered[0, 2] == pytest.approx(0.3)


class TestFitGeneralIC:
    def test_improves_on_simplified_fit_for_asymmetric_traffic(self, general_world):
        *_, values = general_world
        series = TrafficMatrixSeries(values)
        simplified = fit_stable_fp(series)
        general = fit_general_ic(series, base_fit=simplified)
        assert general.mean_error <= simplified.mean_error + 1e-9

    def test_detects_asymmetry(self, general_world):
        f_matrix, *_, values = general_world
        general = fit_general_ic(TrafficMatrixSeries(values))
        true_asymmetry = (f_matrix - f_matrix.T) / 2.0
        correlation = np.corrcoef(general.asymmetry.ravel(), true_asymmetry.ravel())[0, 1]
        assert correlation > 0.5

    def test_predicted_values_match_errors(self, general_world):
        *_, values = general_world
        from repro.core.metrics import rel_l2_temporal_error

        general = fit_general_ic(TrafficMatrixSeries(values))
        np.testing.assert_allclose(
            rel_l2_temporal_error(values, general.predicted_values()), general.errors, atol=1e-12
        )

    def test_runs_without_precomputed_base_fit(self, general_world):
        *_, values = general_world
        result = fit_general_ic(values[:10])
        assert result.forward_fraction_matrix.shape == (values.shape[1], values.shape[1])
        assert result.base_fit.model == "stable-fP"

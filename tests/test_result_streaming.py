"""Tests for streamed sweep results: the :class:`ResultSink` seam.

The contract under test is the one ``--stream-results`` advertises:

* a sink receives every cell's result the moment it completes and the
  driver keeps nothing — the returned :class:`SweepResult` carries only
  failures and timing, and the sunk results are **bit-identical** to an
  accumulate-in-driver sweep on every executor path;
* :meth:`SweepPlan.emit` delivers each cell exactly once (double delivery
  is an executor bug and raises);
* :class:`ArchiveResultSink` turns a streamed sweep's spill directory
  into a self-describing report archive (manifest, per-cell and merged
  mart partials) that ``repro report`` renders;
* ``--remote-workers spawn:N`` launches loopback workers whose sweep
  matches the serial run bitwise, and the CLI rejects malformed
  spawn/stream flags with usage errors.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.errors import ExecutorError
from repro.marts import ArchiveResultSink, build_report, open_archive
from repro.scenarios import (
    LocalPoolExecutor,
    RemoteExecutor,
    Scenario,
    ScenarioRunner,
    SpawnedWorkers,
    SweepPlan,
)

GRID = {"priors": ["gravity", "measured"], "datasets": ["geant"]}
BASE = Scenario(dataset="geant", prior="gravity", n_weeks=1, bins_per_week=24)
STREAMED = Scenario(
    dataset="geant", prior="stable_f", stream=True, bins_per_week=36, max_bins=4
)


class CollectingSink:
    """Reference in-memory sink: records every delivery verbatim."""

    def __init__(self):
        self.calls = []
        self.finished = False

    def cell(self, index, scenario, result, message):
        self.calls.append((index, scenario, result, message))

    def finish(self):
        self.finished = True


# ---------------------------------------------------------------------------
# the sink seam on the in-process path
# ---------------------------------------------------------------------------

class TestSinkSemantics:
    def test_streamed_results_bit_identical_to_accumulated(self):
        baseline = ScenarioRunner().sweep(base=BASE, **GRID)
        sink = CollectingSink()
        streamed = ScenarioRunner().sweep(base=BASE, result_sink=sink, **GRID)

        assert streamed.results == []  # nothing materialises in the driver
        assert sink.finished
        assert streamed.timing["streamed"] is True
        assert streamed.timing["cells_ok"] == 2
        assert baseline.timing["streamed"] is False
        assert [index for index, *_ in sink.calls] == [0, 1]
        for index, scenario, result, message in sink.calls:
            assert message is None
            reference = baseline.result_for(scenario.dataset, scenario.prior)
            assert np.array_equal(result.errors, reference.errors)

    def test_pool_executor_streams_bitwise_identically(self):
        baseline = ScenarioRunner().sweep(base=BASE, **GRID)
        runner = ScenarioRunner()
        cells = [
            BASE.replace(dataset=dataset, prior=prior)
            for dataset in GRID["datasets"]
            for prior in GRID["priors"]
        ]
        sink = CollectingSink()
        plan = SweepPlan(runner=runner, cells=cells, jobs=2, sink=sink)
        outcomes = LocalPoolExecutor(jobs=2).execute(plan)
        assert [outcome for outcome, _ in outcomes] == [None, None]
        assert sorted(index for index, *_ in sink.calls) == [0, 1]
        for index, scenario, result, message in sink.calls:
            assert message is None
            reference = baseline.result_for(scenario.dataset, scenario.prior)
            assert np.array_equal(result.errors, reference.errors)


class TestPlanEmit:
    def test_emit_is_exactly_once(self):
        plan = SweepPlan(runner=None, cells=[BASE, BASE.replace(prior="measured")], jobs=1)
        plan.emit(0, "result", None)
        assert plan.pending() == [1]
        with pytest.raises(ExecutorError, match="delivered twice"):
            plan.emit(0, "result", None)

    def test_outcomes_requires_every_cell(self):
        plan = SweepPlan(runner=None, cells=[BASE, BASE.replace(prior="measured")], jobs=1)
        plan.emit(1, None, "boom")
        with pytest.raises(ExecutorError, match="delivered no outcome"):
            plan.outcomes()
        plan.emit(0, "result", None)
        assert plan.outcomes() == [("result", None), (None, "boom")]

    def test_sink_mode_forwards_and_drops(self):
        sink = CollectingSink()
        plan = SweepPlan(runner=None, cells=[BASE], jobs=1, sink=sink)
        plan.emit(0, "result", None)
        assert sink.calls == [(0, BASE, "result", None)]
        assert plan.outcomes() == [(None, None)]  # the result was not retained


# ---------------------------------------------------------------------------
# the archive sink over a streamed spilled sweep
# ---------------------------------------------------------------------------

class TestArchiveResultSink:
    def test_streamed_sweep_builds_a_reportable_archive(self, tmp_path):
        archive_dir = tmp_path / "arch"
        sink = ArchiveResultSink(archive_dir)
        result = ScenarioRunner().sweep(
            priors=["stable_f"],
            datasets=["geant"],
            base=STREAMED.replace(spill_dir=str(archive_dir)),
            result_sink=sink,
        )
        assert result.failures == []
        assert sink.cells_ok == 1
        assert sink.summary["cells_ok"] == 1

        manifest = [
            json.loads(line)
            for line in (archive_dir / "manifest.jsonl").read_text().splitlines()
        ]
        assert len(manifest) == 1
        assert manifest[0]["ok"] and manifest[0]["label"] == "geant/stable_f"
        assert manifest[0]["bins"] == 4
        top_level = json.loads((archive_dir / "marts.json").read_text())
        assert top_level["error_quantiles"]["result"]["bins"] == 4

        archive = open_archive(archive_dir)
        report = build_report(archive, marts=["overview", "error_quantiles"])
        (cell,) = report["cells"]
        assert cell["cell"] == "geant-stable_f"
        assert cell["marts"]["overview"]["n_bins"] == 4
        assert cell["marts"]["error_quantiles"]["bins"] == 4
        assert cell["metadata"]["ok"] is True

        # The archive-level quantiles equal reducing the plain run's errors.
        plain = ScenarioRunner().run(STREAMED)
        errors = np.asarray(plain.errors, dtype=float)
        assert top_level["error_quantiles"]["result"]["mean"] == pytest.approx(
            errors.mean(), rel=1e-12
        )

    def test_failed_cell_lands_in_manifest_not_marts(self, tmp_path):
        sink = ArchiveResultSink(tmp_path)
        sink.cell(0, BASE, None, "synthetic failure")
        sink.finish()
        assert sink.cells_failed == 1
        (entry,) = [
            json.loads(line)
            for line in (tmp_path / "manifest.jsonl").read_text().splitlines()
        ]
        assert entry["ok"] is False
        assert entry["message"] == "synthetic failure"
        summary = json.loads((tmp_path / "marts.json").read_text())
        assert summary["error_quantiles"]["result"]["bins"] == 0


# ---------------------------------------------------------------------------
# spawned loopback workers
# ---------------------------------------------------------------------------

class TestSpawnedWorkers:
    def test_spawned_remote_sweep_matches_serial_bitwise(self):
        serial = ScenarioRunner().sweep(base=BASE, **GRID)
        with SpawnedWorkers(2) as workers:
            assert len(workers) == 2
            for address in workers.addresses:
                host, port = address.rsplit(":", 1)
                assert host and int(port) > 0
            remote = ScenarioRunner().sweep(
                base=BASE, executor=RemoteExecutor(workers.addresses), jobs=2, **GRID
            )
        assert remote.timing["executor"] == "remote"
        for prior in GRID["priors"]:
            left = serial.result_for("geant", prior)
            right = remote.result_for("geant", prior)
            assert np.array_equal(left.errors, right.errors)

    def test_spawn_count_validated(self):
        with pytest.raises(Exception, match="N >= 1"):
            SpawnedWorkers(0)


# ---------------------------------------------------------------------------
# CLI guard rails
# ---------------------------------------------------------------------------

class TestSweepCliErrors:
    ARGS = ["sweep", "--priors", "gravity", "--datasets", "geant"]

    def test_spawn_cannot_mix_with_addresses(self, capsys):
        code = cli_main(
            self.ARGS
            + ["--executor", "remote", "--remote-workers", "spawn:2", "localhost:1"]
        )
        assert code == 2
        assert "cannot be mixed" in capsys.readouterr().err

    def test_spawn_count_must_be_positive(self, capsys):
        for token in ("spawn:0", "spawn:x"):
            code = cli_main(
                self.ARGS + ["--executor", "remote", "--remote-workers", token]
            )
            assert code == 2
            assert "N >= 1" in capsys.readouterr().err

    def test_stream_results_requires_stream_and_spill_dir(self, capsys):
        assert cli_main(self.ARGS + ["--stream-results"]) == 2
        assert "--stream-results requires" in capsys.readouterr().err

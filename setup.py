"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
offline environments without the ``wheel`` package can still perform an
editable install via ``pip install -e . --no-build-isolation`` (which falls
back to the legacy ``setup.py develop`` path) or ``python setup.py develop``.
"""

from setuptools import setup

setup()

"""Packaging for the independent-connection traffic-matrix reproduction.

Metadata is declared here (rather than in a ``pyproject.toml``) so that
offline environments without the ``wheel`` package can still perform an
editable install via ``pip install -e . --no-build-isolation`` (which falls
back to the legacy ``setup.py develop`` path) or ``python setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-ic-tm",
    version="1.1.0",
    description=(
        "Reproduction of 'An Independent-Connection Model for Traffic Matrices' "
        "(Erramilli, Crovella, Taft; IMC 2006) with a pluggable Scenario API"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy",
        "scipy",
    ],
    extras_require={
        # Optional compute backends (repro.backend); the package never
        # imports these unless the matching backend is selected.
        "array-api-strict": ["array-api-strict"],
        "torch": ["torch"],
        "cupy": ["cupy"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
